//! Execution backends: *how* a cell's schedule executes.
//!
//! The paper validates its simulator against the real master/worker
//! runtime (Table 12). This module makes that comparison a first-class
//! axis: an [`ExecBackend`] turns a [`SimConfig`] into a [`SimReport`],
//! and the sweep layer treats the backend like any other grid dimension.
//!
//! * [`SimBackend`] — the pure world model ([`crate::ClusterSim`]).
//! * [`LiveBackend`] — records the world model's engine-ordered schedule
//!   (an [`ExecScript`]) and replays it through the real `eva-exec`
//!   [`Master`]/worker runtime. Launch, checkpoint (migration), round
//!   poll, and completion all become scheduled events on a second
//!   [`EventEngine`]; task programs are seeded from deterministic
//!   per-purpose RNG streams, and every checkpoint lands on an exact
//!   iteration boundary — so live runs are reproducible bit for bit and
//!   any divergence between scheduled and executed work is a real
//!   control-plane bug, not noise.
//!
//! Simulated progress maps to container iterations at
//! [`LIVE_ITERS_PER_HOUR`] per full-throughput hour: a migration at 37 %
//! job progress checkpoints the container at exactly ⌊0.37·N⌉
//! iterations, and the checkpoint blob must carry the program state that
//! a pure function of (seed, position) predicts.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::Duration;

use eva_engine::{derive_seed, EventEngine, RngStreams, SimEvent};
use eva_exec::bytes::Bytes;
use eva_exec::{decode_checkpoint, Master, TaskExit, TaskExitInfo, TaskProgram, WorkerToMaster};
use eva_types::{InstanceId, JobId, TaskId};

use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::SimReport;
use crate::runner::{run_recorded, run_simulation, SimConfig};
use crate::script::{ExecActionKind, ExecScript};

/// Container iterations per simulated full-throughput hour.
pub const LIVE_ITERS_PER_HOUR: f64 = 60.0;

/// Iteration-count ceiling per task, so paper-scale jobs stay replayable.
pub const MAX_LIVE_ITERS: u64 = 100_000;

/// RNG stream feeding live task-program seeds (stream 0 is the world
/// model's delay stream).
pub const LIVE_PROGRAM_STREAM: u64 = 1;

/// How long the replay waits on any single container exit before
/// declaring the control plane wedged.
const LIVE_EXIT_TIMEOUT: Duration = Duration::from_secs(30);

/// An execution backend: one way of turning a cell's configuration into
/// its report.
pub trait ExecBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Runs one cell end to end.
    fn run(&self, cfg: &SimConfig) -> SimReport;
}

/// The backend axis value of a sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BackendKind {
    /// Pure world-model simulation.
    Sim,
    /// Schedule replayed through the real master/worker runtime.
    Live,
}

impl BackendKind {
    /// Stable textual form used in cell keys and on the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Live => "live",
        }
    }

    /// Resolves a CLI-style backend name.
    pub fn from_name(name: &str) -> Result<BackendKind, String> {
        match name.to_ascii_lowercase().as_str() {
            "sim" => Ok(BackendKind::Sim),
            "live" => Ok(BackendKind::Live),
            other => Err(format!("unknown backend `{other}` (sim|live)")),
        }
    }

    /// Every name [`BackendKind::from_name`] accepts.
    pub fn names() -> &'static [&'static str] {
        &["sim", "live"]
    }

    /// The backend implementation for this kind.
    pub fn backend(&self) -> Box<dyn ExecBackend> {
        match self {
            BackendKind::Sim => Box::new(SimBackend),
            BackendKind::Live => Box::new(LiveBackend),
        }
    }
}

/// The pure world-model backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl ExecBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn run(&self, cfg: &SimConfig) -> SimReport {
        run_simulation(cfg)
    }
}

/// The live backend: schedule in the world model, execute on the real
/// runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveBackend;

impl ExecBackend for LiveBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Live
    }

    fn run(&self, cfg: &SimConfig) -> SimReport {
        self.run_detailed(cfg)
            .expect("live replay must execute the scheduled script")
            .report
    }
}

/// Everything a live run measured, alongside what the schedule expected.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// The live report: schedule-level fields (cost, JCT, makespan) come
    /// from the world model whose schedule was executed; execution-level
    /// fields (jobs completed, migrations per task) are overwritten with
    /// what the runtime actually did.
    pub report: SimReport,
    /// The same schedule's pure-simulation report, for delta reporting.
    pub sim_report: SimReport,
    /// Jobs the schedule expected to complete.
    pub expected_jobs: BTreeSet<JobId>,
    /// Jobs whose every task really exited `Finished` at full position.
    pub completed_jobs: BTreeSet<JobId>,
    /// Iterations the schedule expected across all confirmed tasks.
    pub expected_iterations: u64,
    /// Iterations the containers really completed.
    pub live_iterations: u64,
    /// Checkpoint exits the runtime really performed (live migrations).
    pub live_checkpoints: u64,
    /// Checkpoint boundaries the schedule expected (migration stops plus
    /// fault kills). Fault-free this equals [`Self::live_checkpoints`].
    pub expected_checkpoints: u64,
    /// Iterations the containers executed across *every* segment
    /// (collect and confirm exits alike), counted from each segment's
    /// actual resume position.
    pub live_executed: u64,
    /// Iterations the schedule expected across those same segments.
    /// `live_executed - expected_executed` is work re-executed because a
    /// checkpoint was confiscated or dropped.
    pub expected_executed: u64,
    /// Fault kills the runtime performed (rescue-checkpoint collected,
    /// then the blob confiscated).
    pub live_kills: u64,
    /// Stored checkpoint blobs deleted by the ckpt-drop fault regime.
    pub dropped_checkpoints: u64,
    /// Finished tasks whose final program state diverged from the pure
    /// `(seed, position)` prediction — any nonzero value means state was
    /// lost or corrupted across a checkpoint/restore cycle.
    pub digest_mismatches: u64,
}

impl LiveOutcome {
    /// Iterations the runtime re-executed beyond what the schedule
    /// planned — the direct cost of lost checkpoints. Exactly zero on a
    /// fault-free run.
    pub fn re_executed(&self) -> u64 {
        self.live_executed.saturating_sub(self.expected_executed)
    }

    /// Jobs really completed minus jobs the schedule expected.
    pub fn delta_jobs(&self) -> i64 {
        self.completed_jobs.len() as i64 - self.expected_jobs.len() as i64
    }

    /// Live makespan minus simulated makespan, in hours. The live
    /// makespan charges re-executed iterations at [`LIVE_ITERS_PER_HOUR`],
    /// so fault-free runs are exactly zero by construction.
    pub fn delta_makespan_hours(&self) -> f64 {
        self.report.makespan_hours - self.sim_report.makespan_hours
    }

    /// Checkpoints the runtime banked minus boundaries the schedule
    /// expected. Fault kills confiscate their rescue blobs, so each kill
    /// shows up here as -1.
    pub fn delta_migrations(&self) -> i64 {
        self.live_checkpoints as i64 - self.expected_checkpoints as i64
    }
}

/// Replay events. All share one priority: the authoritative order is the
/// *recorded* schedule, so events are enqueued in script order and the
/// engine's `(time, FIFO)` total order reproduces it exactly.
#[derive(Debug, Clone)]
enum LiveEvent {
    /// Wait for `task`'s checkpointed exit at its planned boundary and
    /// stash the blob (the first half of a migration). With `kill` set
    /// the boundary is an injected fault: the rescue blob is confiscated
    /// after collection, so the task's next segment restarts from zero.
    Collect { task: TaskId, kill: bool },
    /// Injected ckpt-drop fault: delete one stored checkpoint blob,
    /// chosen by `draw` over the tasks currently stopped with a blob.
    Drop { draw: u64 },
    /// Wait for every task of `job` to finish and audit their digests.
    Confirm { job: JobId },
    /// Start or resume one execution segment of a task.
    Launch {
        task: TaskId,
        instance: InstanceId,
        /// Checkpoint at exactly this iteration (`None` = run to
        /// completion).
        until: Option<u64>,
    },
    /// Ask every worker for throughput reports (one per scheduling
    /// round, mirroring the paper's periodic polling).
    Poll,
}

impl SimEvent for LiveEvent {}

/// The deterministic stand-in task program: a SplitMix64 accumulator
/// whose state after `k` iterations is a pure function of `(seed, k)`,
/// so checkpoint/restore fidelity is auditable.
struct LiveProgram {
    state: u64,
}

fn advance_state(state: u64, iteration: u64) -> u64 {
    // `iteration + 1` keeps the mix index nonzero (index 0 is identity).
    derive_seed(state, iteration + 1)
}

impl TaskProgram for LiveProgram {
    fn step(&mut self, iteration: u64) {
        self.state = advance_state(self.state, iteration);
    }

    fn checkpoint(&self) -> Bytes {
        Bytes::copy_from_slice(&self.state.to_le_bytes())
    }

    fn restore(&mut self, blob: &Bytes) {
        if blob.len() == 8 {
            self.state = u64::from_le_bytes(blob[..8].try_into().unwrap());
        }
    }
}

/// Seed of `task`'s live program under master seed `master`.
fn task_seed(master: u64, task: TaskId) -> u64 {
    let uid = task
        .job
        .0
        .wrapping_mul(1 << 20)
        .wrapping_add(task.index as u64 + 1);
    derive_seed(derive_seed(master, LIVE_PROGRAM_STREAM), uid)
}

/// Expected program state after running all `total` iterations.
fn expected_digest(seed: u64, total: u64) -> u64 {
    (0..total).fold(seed, advance_state)
}

/// Iterations representing one task of a job with the given work.
fn iterations_for(duration_hours: f64) -> u64 {
    ((duration_hours * LIVE_ITERS_PER_HOUR).round() as u64).clamp(1, MAX_LIVE_ITERS)
}

impl LiveBackend {
    /// Runs one cell on the live runtime, returning the full measurement
    /// set (the trait's [`ExecBackend::run`] keeps only the report).
    pub fn run_detailed(&self, cfg: &SimConfig) -> Result<LiveOutcome, String> {
        let (sim_report, script) = run_recorded(cfg);
        let plan = ReplayPlan::build(cfg, &script)?;
        plan.execute(cfg, sim_report)
    }
}

/// The event schedule derived from a recorded script.
struct ReplayPlan {
    engine: EventEngine<LiveEvent>,
    /// Total iterations per task appearing in the script.
    totals: BTreeMap<TaskId, u64>,
    /// Tasks of each job that completed in the script.
    job_tasks: BTreeMap<JobId, Vec<TaskId>>,
    /// Checkpoint boundaries the schedule carries (stops + kills).
    expected_checkpoints: u64,
    /// Iterations the schedule expects across every replayed segment.
    expected_executed: u64,
}

impl ReplayPlan {
    fn build(cfg: &SimConfig, script: &ExecScript) -> Result<ReplayPlan, String> {
        let mut totals: BTreeMap<TaskId, u64> = BTreeMap::new();
        let mut job_of: BTreeMap<JobId, &eva_types::JobSpec> = BTreeMap::new();
        for job in cfg.trace.jobs() {
            job_of.insert(job.id, job);
            for t in &job.tasks {
                totals.insert(t.id, iterations_for(job.duration_at_full_tput.as_hours_f64()));
            }
        }

        // Pass 1: derive each segment's checkpoint boundary. A task has at
        // most one open segment, so boundaries queue up in start order.
        let mut open: HashSet<TaskId> = HashSet::new();
        let mut pos: HashMap<TaskId, u64> = HashMap::new();
        let mut bounds: HashMap<TaskId, std::collections::VecDeque<Option<u64>>> = HashMap::new();
        let mut job_tasks: BTreeMap<JobId, Vec<TaskId>> = BTreeMap::new();
        let mut expected_checkpoints = 0u64;
        let mut expected_executed = 0u64;
        for action in &script.actions {
            match &action.kind {
                ExecActionKind::Start { task, .. } => {
                    if !open.insert(*task) {
                        return Err(format!("task {task} started twice without a stop"));
                    }
                }
                // A fault kill closes a segment exactly like a migration
                // stop: the paper-style preemption warning lets the task
                // rescue-checkpoint at the kill boundary. The blob's fate
                // differs only at replay time (confiscated, not resumed).
                ExecActionKind::Stop { task, progress }
                | ExecActionKind::Kill { task, progress } => {
                    if !open.remove(task) {
                        return Err(format!("task {task} stopped while not running"));
                    }
                    let total = *totals
                        .get(task)
                        .ok_or_else(|| format!("task {task} missing from trace"))?;
                    let from = pos.get(task).copied().unwrap_or(0);
                    // Stop boundaries stay strictly inside the task so the
                    // container exits Checkpointed, never Finished.
                    let until = ((progress * total as f64).round() as u64)
                        .clamp(from, total.saturating_sub(1));
                    bounds.entry(*task).or_default().push_back(Some(until));
                    pos.insert(*task, until);
                    expected_checkpoints += 1;
                    expected_executed += until - from;
                }
                ExecActionKind::Round => {}
                ExecActionKind::JobDone { job } => {
                    let spec = job_of
                        .get(job)
                        .ok_or_else(|| format!("job {job} missing from trace"))?;
                    let mut tasks = Vec::new();
                    for t in &spec.tasks {
                        if !open.remove(&t.id) {
                            return Err(format!("{job} done but task {} not running", t.id));
                        }
                        bounds.entry(t.id).or_default().push_back(None);
                        let total = totals.get(&t.id).copied().unwrap_or(0);
                        expected_executed +=
                            total.saturating_sub(pos.get(&t.id).copied().unwrap_or(0));
                        tasks.push(t.id);
                    }
                    job_tasks.insert(*job, tasks);
                }
            }
        }
        // Jobs the schedule never completed leave dangling open segments;
        // their final starts get no bound entry and are not replayed.

        // Pass 2: enqueue replay events in script order. Script times are
        // non-decreasing and every event shares one priority, so the
        // engine's (time, FIFO) order replays the schedule verbatim.
        let mut engine: EventEngine<LiveEvent> = EventEngine::new();
        for action in &script.actions {
            match &action.kind {
                ExecActionKind::Start { task, instance, .. } => {
                    let Some(until) = bounds.get_mut(task).and_then(|q| q.pop_front()) else {
                        continue; // dangling final segment of an unfinished job
                    };
                    engine.schedule(
                        action.at,
                        LiveEvent::Launch {
                            task: *task,
                            instance: *instance,
                            until,
                        },
                    );
                }
                ExecActionKind::Stop { task, .. } => {
                    engine.schedule(action.at, LiveEvent::Collect { task: *task, kill: false });
                }
                ExecActionKind::Kill { task, .. } => {
                    engine.schedule(action.at, LiveEvent::Collect { task: *task, kill: true });
                }
                ExecActionKind::Round => {
                    engine.schedule(action.at, LiveEvent::Poll);
                }
                ExecActionKind::JobDone { job } => {
                    engine.schedule(action.at, LiveEvent::Confirm { job: *job });
                }
            }
        }

        // The ckpt-drop regime injects through the live command channel:
        // the same pre-compiled plan the simulator consumes (identical
        // trace handle, so identical horizon and schedule) deletes stored
        // blobs here. Other regimes act through the recorded schedule
        // itself (kills) or don't touch the control plane at all.
        let fault_plan = FaultPlan::for_trace(cfg.faults, cfg.seed, &cfg.trace);
        for ev in &fault_plan.events {
            if matches!(ev.action, FaultAction::CkptDrop) {
                engine.schedule(ev.at, LiveEvent::Drop { draw: ev.draw });
            }
        }

        Ok(ReplayPlan {
            engine,
            totals,
            job_tasks,
            expected_checkpoints,
            expected_executed,
        })
    }

    fn execute(mut self, cfg: &SimConfig, sim_report: SimReport) -> Result<LiveOutcome, String> {
        let master_seed = RngStreams::new(cfg.seed).master();
        let mut master = Master::new();
        // Exits observed while waiting for a different task; the replay
        // blocks on the report channel, never on a sleep loop.
        let mut exits: HashMap<TaskId, TaskExitInfo> = HashMap::new();

        let mut live_checkpoints = 0u64;
        let mut live_iterations = 0u64;
        let mut expected_iterations = 0u64;
        let mut digest_mismatches = 0u64;
        let mut live_kills = 0u64;
        let mut dropped_checkpoints = 0u64;
        let mut live_executed = 0u64;
        // Iteration each task's current segment actually resumed from
        // (position decoded from the fetched blob; 0 when none existed).
        let mut launch_pos: HashMap<TaskId, u64> = HashMap::new();
        // Tasks stopped at a boundary whose blob still sits in storage —
        // the candidate pool for injected checkpoint drops.
        let mut stopped_with_blob: BTreeSet<TaskId> = BTreeSet::new();
        let mut completed_jobs: BTreeSet<JobId> = BTreeSet::new();
        let expected_jobs: BTreeSet<JobId> = self.job_tasks.keys().copied().collect();

        let wait_exit = |master: &Master,
                             exits: &mut HashMap<TaskId, TaskExitInfo>,
                             task: TaskId|
         -> Result<TaskExitInfo, String> {
            if let Some(info) = exits.remove(&task) {
                return Ok(info);
            }
            let deadline = std::time::Instant::now() + LIVE_EXIT_TIMEOUT;
            loop {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                let Some(report) = master.recv_report(remaining) else {
                    return Err(format!("live replay timed out waiting for {task}"));
                };
                if let WorkerToMaster::TaskExited {
                    instance,
                    task: t,
                    exit,
                    checkpoint,
                    completed,
                } = report
                {
                    let info = TaskExitInfo {
                        task: t,
                        instance,
                        exit,
                        checkpoint,
                        completed,
                    };
                    if t == task {
                        return Ok(info);
                    }
                    exits.insert(t, info);
                }
            }
        };

        while let Some(scheduled) = self.engine.pop() {
            self.engine.advance_to(scheduled.at);
            match scheduled.event {
                LiveEvent::Launch {
                    task,
                    instance,
                    until,
                } => {
                    if !master.has_instance(instance) {
                        master.register_instance(
                            instance,
                            Box::new(move |t| {
                                Box::new(LiveProgram {
                                    state: task_seed(master_seed, t),
                                })
                            }),
                        );
                    }
                    let total = *self
                        .totals
                        .get(&task)
                        .ok_or_else(|| format!("no iteration total for {task}"))?;
                    let checkpoint = master.fetch_checkpoint(task);
                    let resumed = checkpoint
                        .as_ref()
                        .map(|blob| decode_checkpoint(blob).0)
                        .unwrap_or(0);
                    launch_pos.insert(task, resumed);
                    stopped_with_blob.remove(&task);
                    master
                        .launch_segment(instance, task, total, until, checkpoint)
                        .map_err(|e| format!("launch {task}: {e:?}"))?;
                }
                LiveEvent::Collect { task, kill } => {
                    let info = wait_exit(&master, &mut exits, task)?;
                    if info.exit != TaskExit::Checkpointed {
                        return Err(format!(
                            "{task} exited {:?} at a planned checkpoint boundary",
                            info.exit
                        ));
                    }
                    // The blob itself reached global storage when the exit
                    // report was applied; the resume launch fetches it.
                    if info.checkpoint.is_none() || master.fetch_checkpoint(task).is_none() {
                        return Err(format!("{task} checkpointed without a stored blob"));
                    }
                    live_executed += info
                        .completed
                        .saturating_sub(launch_pos.get(&task).copied().unwrap_or(0));
                    if kill {
                        // Injected fault: the rescue blob is confiscated,
                        // so the next segment re-executes from zero.
                        master.drop_checkpoint(task);
                        live_kills += 1;
                    } else {
                        live_checkpoints += 1;
                        stopped_with_blob.insert(task);
                    }
                }
                LiveEvent::Drop { draw } => {
                    let candidates: Vec<TaskId> =
                        stopped_with_blob.iter().copied().collect();
                    if !candidates.is_empty() {
                        let victim = candidates[(draw % candidates.len() as u64) as usize];
                        if master.drop_checkpoint(victim) {
                            dropped_checkpoints += 1;
                        }
                        stopped_with_blob.remove(&victim);
                    }
                }
                LiveEvent::Confirm { job } => {
                    let tasks = self.job_tasks.get(&job).cloned().unwrap_or_default();
                    let mut all_finished = true;
                    for task in tasks {
                        let info = wait_exit(&master, &mut exits, task)?;
                        let total = self.totals.get(&task).copied().unwrap_or(0);
                        expected_iterations += total;
                        live_iterations += info.completed;
                        live_executed += info
                            .completed
                            .saturating_sub(launch_pos.get(&task).copied().unwrap_or(0));
                        if info.exit != TaskExit::Finished || info.completed != total {
                            all_finished = false;
                            continue;
                        }
                        // Audit state continuity across every
                        // checkpoint/restore the task went through.
                        let digest = info
                            .checkpoint
                            .as_ref()
                            .map(|b| decode_checkpoint(b).1)
                            .filter(|state| state.len() == 8)
                            .map(|state| u64::from_le_bytes(state[..8].try_into().unwrap()));
                        let expected =
                            expected_digest(task_seed(master_seed, task), total);
                        if digest != Some(expected) {
                            digest_mismatches += 1;
                        }
                    }
                    if all_finished {
                        completed_jobs.insert(job);
                    }
                }
                LiveEvent::Poll => {
                    master.poll_throughput();
                }
            }
        }
        master.shutdown();

        let task_count = self.totals.len().max(1) as f64;
        let mut report = sim_report.clone();
        report.jobs_completed = completed_jobs.len();
        report.migrations_per_task = live_checkpoints as f64 / task_count;
        // Charge re-executed work (segments restarted because their
        // checkpoint was confiscated or dropped) to the live makespan at
        // the same iteration↔hours exchange rate the mapping uses. A
        // fault-free replay re-executes nothing, so the adjustment — and
        // therefore the sim-vs-live makespan delta — is exactly zero.
        let re_executed = live_executed.saturating_sub(self.expected_executed);
        report.makespan_hours += re_executed as f64 / LIVE_ITERS_PER_HOUR;

        Ok(LiveOutcome {
            report,
            sim_report,
            expected_jobs,
            completed_jobs,
            expected_iterations,
            live_iterations,
            live_checkpoints,
            expected_checkpoints: self.expected_checkpoints,
            live_executed,
            expected_executed: self.expected_executed,
            live_kills,
            dropped_checkpoints,
            digest_mismatches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_cloud::FidelityMode;
    use eva_types::SimDuration;
    use eva_workloads::SyntheticTraceConfig;

    use crate::runner::SchedulerKind;

    fn tiny_cfg(jobs: usize, scheduler: SchedulerKind) -> SimConfig {
        let trace = SyntheticTraceConfig {
            num_jobs: jobs,
            mean_interarrival: SimDuration::from_mins(15),
            duration: eva_workloads::UniformHours::new(0.3, 0.8),
            single_task_only: false,
        }
        .generate(17);
        let mut cfg = SimConfig::new(trace, scheduler);
        cfg.fidelity = FidelityMode::Nominal;
        cfg
    }

    #[test]
    fn backend_kinds_round_trip() {
        for name in BackendKind::names() {
            let kind = BackendKind::from_name(name).unwrap();
            assert_eq!(kind.label(), *name);
            assert_eq!(kind.backend().kind(), kind);
        }
        assert!(BackendKind::from_name("hardware").is_err());
    }

    #[test]
    fn sim_backend_matches_run_simulation() {
        let cfg = tiny_cfg(4, SchedulerKind::NoPacking);
        assert_eq!(SimBackend.run(&cfg), run_simulation(&cfg));
    }

    #[test]
    fn live_replay_confirms_every_scheduled_job() {
        let cfg = tiny_cfg(5, SchedulerKind::NoPacking);
        let outcome = LiveBackend.run_detailed(&cfg).unwrap();
        assert_eq!(outcome.completed_jobs, outcome.expected_jobs);
        assert_eq!(outcome.report.jobs_completed, outcome.sim_report.jobs_completed);
        assert_eq!(outcome.live_iterations, outcome.expected_iterations);
        assert_eq!(outcome.digest_mismatches, 0);
        // No-Packing never migrates, live or simulated.
        assert_eq!(outcome.live_checkpoints, 0);
        assert_eq!(outcome.report.migrations_per_task, 0.0);
    }

    #[test]
    fn live_replay_survives_migrations_under_eva() {
        // A dense trace under Eva exercises checkpoint → stash → resume
        // on the real runtime; every checkpoint must land on its planned
        // boundary and state must survive each hop.
        let trace = SyntheticTraceConfig {
            num_jobs: 12,
            mean_interarrival: SimDuration::from_mins(6),
            duration: eva_workloads::UniformHours::new(0.5, 1.5),
            single_task_only: true,
        }
        .generate(23);
        let mut cfg = SimConfig::new(
            trace,
            SchedulerKind::Eva(eva_core::EvaConfig::eva()),
        );
        cfg.fidelity = FidelityMode::Nominal;
        let outcome = LiveBackend.run_detailed(&cfg).unwrap();
        assert_eq!(outcome.completed_jobs, outcome.expected_jobs);
        assert_eq!(outcome.digest_mismatches, 0);
        assert_eq!(outcome.live_iterations, outcome.expected_iterations);
    }

    #[test]
    fn fault_free_deltas_are_exactly_zero() {
        // The robustness report's fault-free column must be structurally
        // zero, not approximately zero: no kills, no drops, no
        // re-execution, and all three deltas identically zero.
        let trace = SyntheticTraceConfig {
            num_jobs: 10,
            mean_interarrival: SimDuration::from_mins(8),
            duration: eva_workloads::UniformHours::new(0.4, 1.2),
            single_task_only: true,
        }
        .generate(31);
        let mut cfg = SimConfig::new(trace, SchedulerKind::Eva(eva_core::EvaConfig::eva()));
        cfg.fidelity = FidelityMode::Nominal;
        let outcome = LiveBackend.run_detailed(&cfg).unwrap();
        assert_eq!(outcome.live_kills, 0);
        assert_eq!(outcome.dropped_checkpoints, 0);
        assert_eq!(outcome.re_executed(), 0);
        assert_eq!(outcome.delta_jobs(), 0);
        assert_eq!(outcome.delta_migrations(), 0);
        assert_eq!(outcome.delta_makespan_hours(), 0.0);
    }

    #[test]
    fn preempt_storm_kills_and_charges_re_execution() {
        // A storm over a dense trace must produce fault kills whose
        // rescue blobs are confiscated: each kill is a -1 migration
        // delta, and the re-executed work is charged to live makespan.
        let trace = SyntheticTraceConfig {
            num_jobs: 10,
            mean_interarrival: SimDuration::from_mins(8),
            duration: eva_workloads::UniformHours::new(0.4, 1.2),
            single_task_only: true,
        }
        .generate(31);
        let mut cfg = SimConfig::new(trace, SchedulerKind::Eva(eva_core::EvaConfig::eva()));
        cfg.fidelity = FidelityMode::Nominal;
        cfg.faults = crate::FaultSpec::parse("preempt-storm:3").unwrap();
        let outcome = LiveBackend.run_detailed(&cfg).unwrap();
        assert!(outcome.live_kills > 0, "storm produced no kills");
        assert_eq!(outcome.delta_migrations(), -(outcome.live_kills as i64));
        assert!(outcome.re_executed() > 0, "confiscated blobs must cost work");
        let charged = outcome.re_executed() as f64 / LIVE_ITERS_PER_HOUR;
        assert!((outcome.delta_makespan_hours() - charged).abs() < 1e-9);
        // Re-execution still converges: every scheduled job completes.
        assert_eq!(outcome.completed_jobs, outcome.expected_jobs);
        assert_eq!(outcome.digest_mismatches, 0);
    }

    #[test]
    fn live_fault_replay_is_deterministic() {
        let run = || {
            let trace = SyntheticTraceConfig {
                num_jobs: 8,
                mean_interarrival: SimDuration::from_mins(10),
                duration: eva_workloads::UniformHours::new(0.3, 0.9),
                single_task_only: true,
            }
            .generate(41);
            let mut cfg = SimConfig::new(trace, SchedulerKind::Stratus);
            cfg.fidelity = FidelityMode::Nominal;
            cfg.faults = crate::FaultSpec::parse("worker-crash:2").unwrap();
            LiveBackend.run_detailed(&cfg).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.report, b.report);
        assert_eq!(a.live_kills, b.live_kills);
        assert_eq!(a.live_executed, b.live_executed);
        assert_eq!(a.dropped_checkpoints, b.dropped_checkpoints);
    }

    #[test]
    fn expected_digest_is_segment_invariant() {
        // Running 0..n in one go equals running [0,k) then [k,n) — the
        // invariant the live checkpoint audit relies on.
        let seed = task_seed(99, TaskId::new(JobId(3), 1));
        let whole = expected_digest(seed, 50);
        let first = (0..20).fold(seed, advance_state);
        let second = (20..50).fold(first, advance_state);
        assert_eq!(whole, second);
    }

    #[test]
    fn iteration_mapping_is_clamped_and_monotone() {
        assert_eq!(iterations_for(0.0), 1);
        assert_eq!(iterations_for(1.0), 60);
        assert_eq!(iterations_for(1e9), MAX_LIVE_ITERS);
        assert!(iterations_for(2.0) > iterations_for(1.0));
    }
}
