//! Report assembly: folds a finished [`ClusterSim`] into a [`SimReport`].

use eva_types::{InstanceId, SimTime};

use crate::metrics::{empirical_cdf, SimReport};
use crate::state::JobProgress;
use crate::world::ClusterSim;

/// Consumes a fully-stepped world and produces its experiment report.
pub(crate) fn finalize(mut sim: ClusterSim) -> SimReport {
    // Safety: nothing should remain live.
    let now = sim.now();
    let leftovers: Vec<InstanceId> = sim.cloud.live_instances(now).map(|i| i.id).collect();
    for id in leftovers {
        let _ = sim.cloud.terminate(id, now);
    }

    let end = sim
        .cloud
        .instances()
        .filter_map(|i| i.terminated_at)
        .max()
        .unwrap_or(now)
        .max(now);

    let completed: Vec<&JobProgress> = sim.jobs.values().filter(|j| j.is_done()).collect();
    let n = completed.len().max(1) as f64;
    let avg_jct_hours = completed.iter().filter_map(|j| j.jct_hours()).sum::<f64>() / n;
    let avg_idle_hours = completed.iter().map(|j| j.idle_hours).sum::<f64>() / n;
    let avg_norm_tput = completed.iter().map(|j| j.mean_tput()).sum::<f64>() / n;
    let jobs_completed = completed.len();

    let uptimes: Vec<f64> = sim
        .cloud
        .instances()
        .map(|i| i.uptime(end).as_hours_f64())
        .collect();
    let billed_hours: f64 = uptimes.iter().sum();

    let alloc = |r: usize| {
        if sim.capacity_integral[r] <= 0.0 {
            0.0
        } else {
            sim.alloc_integral[r] / sim.capacity_integral[r]
        }
    };

    let first_arrival = sim
        .cfg
        .trace
        .jobs()
        .first()
        .map(|j| j.arrival)
        .unwrap_or(SimTime::ZERO);

    SimReport {
        scheduler: sim.scheduler.name().to_string(),
        jobs_completed,
        total_cost_dollars: sim.cloud.total_bill(end).as_dollars(),
        instances_launched: sim.cloud.launch_count(),
        migrations_per_task: sim.migration_count as f64 / sim.total_tasks.max(1) as f64,
        avg_jct_hours,
        avg_idle_hours,
        avg_norm_tput,
        tasks_per_instance: if billed_hours > 0.0 {
            sim.task_running_hours / billed_hours
        } else {
            0.0
        },
        gpu_alloc: alloc(0),
        cpu_alloc: alloc(1),
        ram_alloc: alloc(2),
        uptime_cdf: empirical_cdf(uptimes, 100),
        full_reconfig_rate: if sim.rounds > 0 {
            sim.full_rounds as f64 / sim.rounds as f64
        } else {
            0.0
        },
        makespan_hours: end.duration_since(first_arrival).as_hours_f64(),
    }
}
