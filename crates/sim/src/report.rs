//! Report assembly: folds a finished [`ClusterSim`] into a [`SimReport`],
//! and splices shard reports back into whole-trace reports.

use eva_types::{InstanceId, JobId, SimTime};
use eva_workloads::ShardMeta;
use serde::{Deserialize, Serialize};

use crate::metrics::{CdfPoint, SimReport};
use crate::world::ClusterSim;

/// Consumes a fully-stepped world and produces its experiment report.
pub(crate) fn finalize(mut sim: ClusterSim) -> SimReport {
    // Fold any deferred lazy progress into the job lanes before reading
    // them (a fully drained run has settled everything already; this is
    // the safety net for partially stepped worlds).
    sim.world.jobs.settle_active_and_reset();
    // Safety: nothing should remain live.
    let now = sim.now();
    let leftovers: Vec<InstanceId> = sim.cloud.live_instances(now).map(|i| i.id).collect();
    for id in leftovers {
        let _ = sim.cloud.terminate(id, now);
    }

    let end = sim.cloud.max_terminated_at().unwrap_or(now).max(now);

    // Completed jobs fold in ascending JobId order, matching the former
    // map iteration. Retired jobs contribute from the completed log
    // (values frozen at completion with the identical float operations
    // this pass applies to still-held slots); the rest come from the
    // slot scan. Without retirement the log is empty and slot order is
    // ID order, so the sort is a stable no-op and every metric folds in
    // the identical sequence as before. The log's already-folded prefix
    // (ids below every entry here — see `CompletedLog`) seeds the sums,
    // and the loop continues the identical left-to-right additions.
    let mut completed: Vec<(JobId, f64, f64, f64)> = sim.completed.pending_rows().collect();
    for s in 0..sim.world.jobs.ids.len() as u32 {
        if sim.world.jobs.released[s as usize] || !sim.world.jobs.is_done(s) {
            continue;
        }
        let jct = sim.world.jobs.completed_at[s as usize]
            .map(|t| t.duration_since(sim.job_spec(s).arrival).as_hours_f64())
            .unwrap_or(0.0);
        completed.push((
            sim.world.jobs.ids[s as usize],
            jct,
            sim.world.jobs.idle_hours[s as usize],
            sim.world.jobs.mean_tput(s),
        ));
    }
    completed.sort_by_key(|e| e.0);
    let (folded_n, mut jct_sum, mut idle_sum, mut tput_sum) = sim.completed.folded();
    for e in &completed {
        jct_sum += e.1;
    }
    for e in &completed {
        idle_sum += e.2;
    }
    for e in &completed {
        tput_sum += e.3;
    }
    let jobs_completed = folded_n + completed.len();
    let n = jobs_completed.max(1) as f64;
    let avg_jct_hours = jct_sum / n;
    let avg_idle_hours = idle_sum / n;
    let avg_norm_tput = tput_sum / n;

    let uptimes: Vec<f64> = sim
        .cloud
        .uptime_rows(end)
        .into_iter()
        .map(|(_, u)| u)
        .collect();
    let billed_hours: f64 = uptimes.iter().sum();

    let alloc = |r: usize| {
        if sim.capacity_integral[r] <= 0.0 {
            0.0
        } else {
            sim.alloc_integral[r] / sim.capacity_integral[r]
        }
    };

    // Streaming worlds have an empty trace; the first ingested job's
    // arrival anchors the makespan instead.
    let first_arrival = sim
        .first_arrival_seen
        .or_else(|| sim.cfg.trace.jobs().first().map(|j| j.arrival))
        .unwrap_or(SimTime::ZERO);

    SimReport {
        scheduler: sim.scheduler.name().to_string(),
        jobs_completed,
        total_cost_dollars: sim.cloud.total_bill(end).as_dollars(),
        instances_launched: sim.cloud.launch_count(),
        migrations_per_task: sim.migration_count as f64 / sim.total_tasks.max(1) as f64,
        avg_jct_hours,
        avg_idle_hours,
        avg_norm_tput,
        tasks_per_instance: if billed_hours > 0.0 {
            sim.task_running_hours / billed_hours
        } else {
            0.0
        },
        gpu_alloc: alloc(0),
        cpu_alloc: alloc(1),
        ram_alloc: alloc(2),
        uptime_cdf: crate::metrics::empirical_cdf(uptimes, 100),
        full_reconfig_rate: if sim.rounds > 0 {
            sim.full_rounds as f64 / sim.rounds as f64
        } else {
            0.0
        },
        makespan_hours: end.duration_since(first_arrival).as_hours_f64(),
        billed_hours,
    }
}

/// A whole-trace report recombined from shard reports, with the metrics
/// whose splice is approximate listed explicitly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplicedReport {
    /// The recombined report.
    pub report: SimReport,
    /// How many shard reports were spliced (1 = the report is a direct
    /// single-cell result, nothing was approximated).
    pub shards: usize,
    /// Metrics whose spliced value is approximate (see [`splice`] for the
    /// per-metric semantics). Empty when `shards == 1`.
    pub inexact_metrics: Vec<String>,
    /// Whether the shard partition was verified clean, and how dirty it
    /// is when not.
    pub audit: PartitionAudit,
}

/// The measured cleanliness of a shard partition.
///
/// A partition is **clean** when no job's estimated execution crosses a
/// window boundary ([`eva_workloads::ShardMeta::straddlers`] is zero in
/// every window). Only then do the integer-sum metrics of a spliced
/// report ([`EXACT_METRICS`]) carry the byte-identical-to-unsharded
/// guarantee; a dirty partition demotes them into
/// [`SplicedReport::inexact_metrics`], so exactness is a *checked*
/// property of every splice, never an assumption about the caller's
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionAudit {
    /// True when no window reports boundary straddlers.
    pub clean: bool,
    /// Total jobs whose estimated execution crosses a window boundary.
    pub straddlers: usize,
    /// Windows in the partition (1 = direct single-cell result).
    pub windows: usize,
}

impl PartitionAudit {
    /// The audit of a direct, unsharded result: trivially clean.
    pub fn single() -> Self {
        PartitionAudit {
            clean: true,
            straddlers: 0,
            windows: 1,
        }
    }

    /// One-line human summary, printed by the CLI and bench harness.
    pub fn summary(&self) -> String {
        if self.clean {
            format!(
                "clean — 0 straddlers across {} window(s); integer metrics exact",
                self.windows
            )
        } else {
            format!(
                "DIRTY — {} straddler(s) across {} window(s); {} demoted to inexact",
                self.straddlers,
                self.windows,
                EXACT_METRICS.join("/")
            )
        }
    }
}

/// Metric names whose splice is exact **on a clean partition**: plain
/// integer sums over shards. A dirty partition (see [`PartitionAudit`])
/// demotes these into [`SplicedReport::inexact_metrics`].
pub const EXACT_METRICS: &[&str] = &["jobs_completed", "instances_launched"];

/// Metric names whose splice is approximate even on a clean partition
/// (everything except [`EXACT_METRICS`]).
pub const INEXACT_METRICS: &[&str] = &[
    "total_cost_dollars",
    "billed_hours",
    "migrations_per_task",
    "avg_jct_hours",
    "avg_idle_hours",
    "avg_norm_tput",
    "tasks_per_instance",
    "gpu_alloc",
    "cpu_alloc",
    "ram_alloc",
    "uptime_cdf",
    "full_reconfig_rate",
    "makespan_hours",
];

/// Recombines per-shard reports into one whole-trace [`SimReport`].
///
/// Shards are independent simulations of arrival-time windows of one
/// trace (see [`eva_workloads::TraceHandle::shard`]); `parts` must hold
/// every shard's `(ShardMeta, SimReport)` in shard order. Per-metric
/// semantics:
///
/// * **Integer sums — exact**: `jobs_completed`, `instances_launched`.
///   When the shard partition is clean (no instance or job interaction
///   crosses a window boundary, e.g. nominal fidelity with idle gaps
///   between windows), these are *byte-identical* to the unsharded run.
/// * **Float sums — approximate**: `total_cost_dollars`, `billed_hours`.
///   Values are the same shard-local sums the whole run would make, but
///   floating-point association order differs, so the last bits can too.
/// * **Time-shifted max — approximate**: `makespan_hours` is
///   `max over shards of (window offset + shard makespan)`, the shift
///   re-anchoring each window at its position in the whole trace.
/// * **Weighted averages — approximate**: `avg_jct_hours`,
///   `avg_idle_hours`, `avg_norm_tput` weight by shard completed jobs;
///   `migrations_per_task` by shard task count; `tasks_per_instance` and
///   the three allocation fractions by shard billed hours;
///   `full_reconfig_rate` by shard makespan (a round-count proxy).
/// * **CDF merge — approximate**: `uptime_cdf` is rebuilt from the shard
///   CDFs' density increments weighted by their instance counts.
///
/// Every approximate metric is listed in
/// [`SplicedReport::inexact_metrics`] (the [`INEXACT_METRICS`] set), so
/// downstream consumers can tell a spliced value from a directly
/// simulated one. A single-part splice is the report itself, exact.
///
/// The "integer sums are exact" claim additionally requires a **clean
/// partition**, and splice *audits* that instead of trusting the caller:
/// the shard metas carry per-window boundary-straddler counts (see
/// [`eva_workloads::TraceHandle::shard`]), and any straddler produces a
/// [`PartitionAudit`] with `clean: false` and demotes [`EXACT_METRICS`]
/// into `inexact_metrics` — the splice still proceeds, but no metric
/// claims an exactness the partition cannot deliver.
///
/// # Panics
///
/// Panics when `parts` is empty — there is no report to splice.
pub fn splice(parts: &[(ShardMeta, SimReport)]) -> SplicedReport {
    assert!(!parts.is_empty(), "cannot splice zero shard reports");
    if parts.len() == 1 {
        return SplicedReport {
            report: parts[0].1.clone(),
            shards: 1,
            inexact_metrics: Vec::new(),
            audit: PartitionAudit::single(),
        };
    }
    let straddlers: usize = parts.iter().map(|(m, _)| m.straddlers).sum();
    let audit = PartitionAudit {
        clean: straddlers == 0,
        straddlers,
        windows: parts.len(),
    };

    let jobs_completed: usize = parts.iter().map(|(_, r)| r.jobs_completed).sum();
    let instances_launched: u64 = parts.iter().map(|(_, r)| r.instances_launched).sum();
    let total_cost_dollars: f64 = parts.iter().map(|(_, r)| r.total_cost_dollars).sum();
    let billed_hours: f64 = parts.iter().map(|(_, r)| r.billed_hours).sum();

    // Weighted average over parts; 0 when no part carries weight.
    let weighted = |value: &dyn Fn(&SimReport) -> f64, weight: &dyn Fn(&ShardMeta, &SimReport) -> f64| {
        let total: f64 = parts.iter().map(|(m, r)| weight(m, r)).sum();
        if total <= 0.0 {
            0.0
        } else {
            parts
                .iter()
                .map(|(m, r)| value(r) * weight(m, r))
                .sum::<f64>()
                / total
        }
    };
    let by_jobs = |value: &dyn Fn(&SimReport) -> f64| {
        weighted(value, &|_, r| r.jobs_completed as f64)
    };
    let by_billed = |value: &dyn Fn(&SimReport) -> f64| {
        weighted(value, &|_, r| r.billed_hours)
    };

    let makespan_hours = parts
        .iter()
        .map(|(m, r)| m.offset.as_hours_f64() + r.makespan_hours)
        .fold(0.0f64, f64::max);

    // Rebuild a merged uptime CDF from each shard CDF's density
    // increments, weighted by that shard's instance count.
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for (_, r) in parts {
        let mut prev = 0.0;
        for p in &r.uptime_cdf {
            let w = (p.density - prev) * r.instances_launched as f64;
            if w > 0.0 {
                samples.push((p.value, w));
            }
            prev = p.density;
        }
    }
    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let total_weight: f64 = samples.iter().map(|(_, w)| w).sum();
    let mut uptime_cdf = Vec::with_capacity(samples.len());
    let mut cum = 0.0;
    for (value, w) in samples {
        cum += w;
        uptime_cdf.push(CdfPoint {
            value,
            density: cum / total_weight,
        });
    }
    if let Some(last) = uptime_cdf.last_mut() {
        last.density = 1.0;
    }

    let report = SimReport {
        scheduler: parts[0].1.scheduler.clone(),
        jobs_completed,
        total_cost_dollars,
        instances_launched,
        migrations_per_task: weighted(&|r| r.migrations_per_task, &|m, _| m.tasks as f64),
        avg_jct_hours: by_jobs(&|r| r.avg_jct_hours),
        avg_idle_hours: by_jobs(&|r| r.avg_idle_hours),
        avg_norm_tput: by_jobs(&|r| r.avg_norm_tput),
        tasks_per_instance: by_billed(&|r| r.tasks_per_instance),
        gpu_alloc: by_billed(&|r| r.gpu_alloc),
        cpu_alloc: by_billed(&|r| r.cpu_alloc),
        ram_alloc: by_billed(&|r| r.ram_alloc),
        uptime_cdf,
        full_reconfig_rate: weighted(&|r| r.full_reconfig_rate, &|_, r| r.makespan_hours),
        makespan_hours,
        billed_hours,
    };
    // Demoted integer metrics lead the list so a dirty partition is
    // visible at a glance in artifacts.
    let inexact_metrics = if audit.clean {
        INEXACT_METRICS.iter().map(|s| s.to_string()).collect()
    } else {
        EXACT_METRICS
            .iter()
            .chain(INEXACT_METRICS)
            .map(|s| s.to_string())
            .collect()
    };
    SplicedReport {
        report,
        shards: parts.len(),
        inexact_metrics,
        audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_types::SimDuration;

    fn meta(index: usize, count: usize, offset_hours: u64, tasks: usize) -> ShardMeta {
        ShardMeta {
            index,
            count,
            offset: SimDuration::from_hours(offset_hours),
            end: (index + 1 < count).then(|| SimDuration::from_hours(offset_hours + 10)),
            jobs: tasks,
            tasks,
            straddlers: 0,
            weight: (tasks * 2) as u64,
        }
    }

    fn report(jobs: usize, cost: f64, jct: f64, makespan: f64, billed: f64) -> SimReport {
        SimReport {
            scheduler: "Eva".into(),
            jobs_completed: jobs,
            total_cost_dollars: cost,
            instances_launched: jobs as u64,
            migrations_per_task: 0.5,
            avg_jct_hours: jct,
            avg_idle_hours: jct / 10.0,
            avg_norm_tput: 0.9,
            tasks_per_instance: 1.2,
            gpu_alloc: 0.6,
            cpu_alloc: 0.5,
            ram_alloc: 0.4,
            uptime_cdf: vec![
                CdfPoint {
                    value: makespan / 2.0,
                    density: 0.5,
                },
                CdfPoint {
                    value: makespan,
                    density: 1.0,
                },
            ],
            full_reconfig_rate: 0.25,
            makespan_hours: makespan,
            billed_hours: billed,
        }
    }

    #[test]
    fn single_part_is_exact_passthrough() {
        let r = report(4, 10.0, 1.0, 3.0, 6.0);
        let spliced = splice(&[(meta(0, 1, 0, 4), r.clone())]);
        assert_eq!(spliced.report, r);
        assert_eq!(spliced.shards, 1);
        assert!(spliced.inexact_metrics.is_empty());
        assert_eq!(spliced.audit, PartitionAudit::single());
    }

    #[test]
    fn sums_add_and_makespan_time_shifts() {
        let a = report(4, 10.0, 1.0, 3.0, 6.0);
        let b = report(2, 5.0, 2.0, 4.0, 3.0);
        let spliced = splice(&[
            (meta(0, 2, 0, 4), a),
            (meta(1, 2, 10, 2), b),
        ]);
        let r = &spliced.report;
        assert_eq!(r.jobs_completed, 6);
        assert_eq!(r.instances_launched, 6);
        assert!((r.total_cost_dollars - 15.0).abs() < 1e-12);
        assert!((r.billed_hours - 9.0).abs() < 1e-12);
        // Shard 1 ends at 10 + 4 = 14h > shard 0's 3h.
        assert!((r.makespan_hours - 14.0).abs() < 1e-12);
        // JCT weighted by completed jobs: (1*4 + 2*2) / 6.
        assert!((r.avg_jct_hours - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(spliced.shards, 2);
        assert_eq!(
            spliced.inexact_metrics,
            INEXACT_METRICS
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
        assert!(!spliced.inexact_metrics.contains(&"jobs_completed".to_string()));
        assert!(spliced.audit.clean);
        assert_eq!(spliced.audit.windows, 2);
        assert!(spliced.audit.summary().starts_with("clean"));
    }

    #[test]
    fn dirty_partitions_demote_integer_metrics() {
        let a = report(4, 10.0, 1.0, 3.0, 6.0);
        let b = report(2, 5.0, 2.0, 4.0, 3.0);
        let mut dirty = meta(0, 2, 0, 4);
        dirty.straddlers = 2;
        let spliced = splice(&[(dirty, a.clone()), (meta(1, 2, 10, 2), b.clone())]);
        // The splice still proceeds, values unchanged …
        assert_eq!(spliced.report.jobs_completed, 6);
        assert_eq!(spliced.report.instances_launched, 6);
        // … but the audit records the dirtiness and the integer metrics
        // lose their exactness claim.
        assert_eq!(
            spliced.audit,
            PartitionAudit {
                clean: false,
                straddlers: 2,
                windows: 2
            }
        );
        assert!(spliced.inexact_metrics.iter().any(|m| m == "jobs_completed"));
        assert!(spliced.inexact_metrics.iter().any(|m| m == "instances_launched"));
        assert_eq!(
            spliced.inexact_metrics.len(),
            EXACT_METRICS.len() + INEXACT_METRICS.len()
        );
        assert_eq!(&spliced.inexact_metrics[..2], &["jobs_completed", "instances_launched"]);
        assert!(spliced.audit.summary().contains("DIRTY"));
        assert!(spliced.audit.summary().contains("2 straddler(s)"));

        // The same parts with zero straddlers keep today's exact claims.
        let clean = splice(&[(meta(0, 2, 0, 4), a), (meta(1, 2, 10, 2), b)]);
        assert!(clean.audit.clean);
        assert!(!clean.inexact_metrics.iter().any(|m| m == "jobs_completed"));
    }

    #[test]
    fn partition_audit_serde_round_trips() {
        let audit = PartitionAudit {
            clean: false,
            straddlers: 3,
            windows: 8,
        };
        let json = serde_json::to_string(&audit).unwrap();
        let back: PartitionAudit = serde_json::from_str(&json).unwrap();
        assert_eq!(audit, back);
    }

    #[test]
    fn merged_cdf_is_monotone_and_ends_at_one() {
        let a = report(4, 10.0, 1.0, 3.0, 6.0);
        let b = report(2, 5.0, 2.0, 8.0, 3.0);
        let spliced = splice(&[
            (meta(0, 2, 0, 4), a),
            (meta(1, 2, 10, 2), b),
        ]);
        let cdf = &spliced.report.uptime_cdf;
        assert!(!cdf.is_empty());
        assert_eq!(cdf.last().unwrap().density, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].value >= w[0].value);
            assert!(w[1].density >= w[0].density);
        }
    }

    #[test]
    fn empty_shards_do_not_poison_averages() {
        let a = report(3, 9.0, 1.5, 3.0, 6.0);
        let mut empty = report(0, 0.0, 0.0, 0.0, 0.0);
        empty.instances_launched = 0;
        empty.uptime_cdf.clear();
        let spliced = splice(&[
            (meta(0, 2, 0, 3), a.clone()),
            (meta(1, 2, 50, 0), empty),
        ]);
        let r = &spliced.report;
        assert_eq!(r.jobs_completed, 3);
        assert!((r.avg_jct_hours - a.avg_jct_hours).abs() < 1e-12);
        assert!((r.tasks_per_instance - a.tasks_per_instance).abs() < 1e-12);
    }
}
