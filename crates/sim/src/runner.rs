//! The discrete-event simulation loop.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use eva_baselines::{
    NoPackingScheduler, OracleProfile, OwlScheduler, StratusScheduler, SynergyScheduler,
};
use eva_cloud::{Catalog, CloudProvider, DelayModel, FidelityMode, ProvisionRequest};
use eva_core::{
    EvaConfig, EvaScheduler, InstanceSnapshot, JobObservation, Plan, PlannedInstance, Scheduler,
    SchedulerContext, TaskSnapshot,
};
use eva_interference::TaskContext;
use eva_types::{InstanceId, JobId, SimDuration, SimTime, TaskId, WorkloadKind};
use eva_workloads::{InterferenceModel, Trace, WorkloadCatalog};

use crate::metrics::{empirical_cdf, SimReport};
use crate::state::{JobProgress, TaskRuntime, TaskState};

/// Which scheduler drives the run.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// One reservation-price instance per task.
    NoPacking,
    /// Runtime-binned packing with perfect duration estimates.
    Stratus,
    /// Interference-aware best-fit packing.
    Synergy,
    /// Pair-profile scheduling (receives the ground-truth profile).
    Owl,
    /// Eva with the given configuration.
    Eva(EvaConfig),
}

impl SchedulerKind {
    /// Display name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::NoPacking => "No-Packing",
            SchedulerKind::Stratus => "Stratus",
            SchedulerKind::Synergy => "Synergy",
            SchedulerKind::Owl => "Owl",
            SchedulerKind::Eva(_) => "Eva",
        }
    }
}

/// Ground-truth interference specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterferenceSpec {
    /// The measured Figure 1 matrix.
    Measured,
    /// Uniform pairwise throughput (the §6.4 sweep).
    Uniform(f64),
}

/// One simulation experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The job trace.
    pub trace: Trace,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// RNG seed (delays).
    pub seed: u64,
    /// Scheduling period (the paper uses 5 minutes).
    pub round_period: SimDuration,
    /// Delay-model fidelity (Table 12 contrasts these).
    pub fidelity: FidelityMode,
    /// Ground-truth interference.
    pub interference: InterferenceSpec,
    /// Multiplier on per-task checkpoint/launch delays (Figure 5).
    pub migration_delay_scale: f64,
}

impl SimConfig {
    /// Defaults matching the paper's main experiments.
    pub fn new(trace: Trace, scheduler: SchedulerKind) -> Self {
        SimConfig {
            trace,
            scheduler,
            seed: 42,
            round_period: SimDuration::from_mins(5),
            fidelity: FidelityMode::Stochastic,
            interference: InterferenceSpec::Measured,
            migration_delay_scale: 1.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    TaskReady { task: TaskId, generation: u64 },
    JobDone { job: JobId, generation: u64 },
    Round,
}

impl Event {
    /// Same-timestamp dispatch priority: readiness and completions resolve
    /// before arrivals, arrivals before the round that schedules them.
    fn priority(&self) -> u8 {
        match self {
            Event::TaskReady { .. } => 0,
            Event::JobDone { .. } => 1,
            Event::Arrival(_) => 2,
            Event::Round => 3,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    at: SimTime,
    prio: u8,
    seq: u64,
    event: Event,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.prio, self.seq).cmp(&(other.at, other.prio, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Simulation {
    catalog: Catalog,
    cloud: CloudProvider,
    rng: StdRng,
    interference: InterferenceModel,
    scheduler: Box<dyn Scheduler>,
    round_period: SimDuration,
    migration_delay_scale: f64,

    jobs: BTreeMap<JobId, JobProgress>,
    tasks: BTreeMap<TaskId, TaskRuntime>,
    task_gen: BTreeMap<TaskId, u64>,
    on_instance: BTreeMap<InstanceId, BTreeSet<TaskId>>,
    busy_until: BTreeMap<InstanceId, SimTime>,
    draining: BTreeSet<InstanceId>,

    events: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    now: SimTime,
    round_pending: bool,
    arrivals_remaining: usize,

    // Metric accumulators (time integrals in hours).
    task_running_hours: f64,
    alloc_integral: [f64; 3],
    capacity_integral: [f64; 3],
    migration_count: u64,
    total_tasks: usize,
    rounds: u64,
    full_rounds: u64,
}

impl Simulation {
    fn push(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        let prio = event.priority();
        self.events.push(Reverse(Entry {
            at,
            prio,
            seq: self.seq,
            event,
        }));
    }

    fn schedule_round(&mut self, at: SimTime) {
        if !self.round_pending {
            self.round_pending = true;
            self.push(at, Event::Round);
        }
    }

    /// The ground-truth throughput of a running task given its co-located
    /// running neighbours.
    fn task_tput(&self, task: &TaskRuntime, workload: WorkloadKind) -> f64 {
        let Some(inst) = task.assigned_to else {
            return 0.0;
        };
        if !task.is_running() {
            return 0.0;
        }
        let others: Vec<WorkloadKind> = self
            .on_instance
            .get(&inst)
            .map(|set| {
                set.iter()
                    .filter(|tid| **tid != task.id)
                    .filter_map(|tid| self.tasks.get(tid))
                    .filter(|t| t.is_running())
                    .filter_map(|t| self.workload_of(t.id))
                    .collect()
            })
            .unwrap_or_default();
        self.interference.throughput(workload, &others)
    }

    fn workload_of(&self, task: TaskId) -> Option<WorkloadKind> {
        self.jobs
            .get(&task.job)
            .and_then(|j| j.spec.task(task))
            .map(|t| t.workload)
    }

    /// Effective job throughput: gang-coupled jobs run at the minimum of
    /// their tasks (0 unless all run); single tasks at their own rate.
    fn job_tput(&self, job: &JobProgress) -> f64 {
        let mut min_tput = f64::INFINITY;
        for spec in &job.spec.tasks {
            let Some(rt) = self.tasks.get(&spec.id) else {
                return 0.0;
            };
            if !rt.is_running() {
                return 0.0;
            }
            min_tput = min_tput.min(self.task_tput(rt, spec.workload));
        }
        if min_tput.is_finite() {
            min_tput
        } else {
            0.0
        }
    }

    /// Advances all integrals and job progress to `t`.
    fn advance_to(&mut self, t: SimTime) {
        let dt_hours = t.duration_since(self.now).as_hours_f64();
        if dt_hours > 0.0 {
            // Job progress.
            let tputs: Vec<(JobId, f64)> = self
                .jobs
                .iter()
                .filter(|(_, j)| !j.is_done())
                .map(|(id, j)| (*id, self.job_tput(j)))
                .collect();
            for (id, tput) in tputs {
                if let Some(j) = self.jobs.get_mut(&id) {
                    j.advance(dt_hours, tput);
                }
            }
            // Allocation integrals.
            let mut alloc = [0.0f64; 3];
            let mut cap = [0.0f64; 3];
            let mut running_tasks = 0usize;
            for inst in self.cloud.live_instances(self.now) {
                let Some(ty) = self.catalog.get(inst.type_id) else {
                    continue;
                };
                cap[0] += f64::from(ty.capacity.gpu);
                cap[1] += f64::from(ty.capacity.cpu);
                cap[2] += ty.capacity.ram_mb as f64;
                if let Some(set) = self.on_instance.get(&inst.id) {
                    for tid in set {
                        let Some(job) = self.jobs.get(&tid.job) else {
                            continue;
                        };
                        let Some(spec) = job.spec.task(*tid) else {
                            continue;
                        };
                        let d = ty.demand_of(&spec.demand);
                        alloc[0] += f64::from(d.gpu);
                        alloc[1] += f64::from(d.cpu);
                        alloc[2] += d.ram_mb as f64;
                        if self.tasks.get(tid).map(|t| t.is_running()).unwrap_or(false) {
                            running_tasks += 1;
                        }
                    }
                }
            }
            for r in 0..3 {
                self.alloc_integral[r] += alloc[r] * dt_hours;
                self.capacity_integral[r] += cap[r] * dt_hours;
            }
            self.task_running_hours += running_tasks as f64 * dt_hours;
        }
        self.now = t;
    }

    /// Re-derives every active job's completion event.
    fn recompute_completions(&mut self) {
        let jobs: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, j)| !j.is_done())
            .map(|(id, _)| *id)
            .collect();
        for id in jobs {
            let tput = self.job_tput(&self.jobs[&id]);
            let job = self.jobs.get_mut(&id).unwrap();
            job.completion_generation += 1;
            let generation = job.completion_generation;
            if let Some(eta) = job.eta_hours(tput) {
                let at = self.now + SimDuration::from_hours_f64(eta);
                self.push(
                    at,
                    Event::JobDone {
                        job: id,
                        generation,
                    },
                );
            }
        }
    }

    fn instance_ready_at(&self, id: InstanceId) -> SimTime {
        self.cloud
            .instance(id)
            .map(|i| i.ready_at)
            .unwrap_or(self.now)
    }

    /// Moves (or first-places) a task onto `dest`.
    fn transfer_task(&mut self, tid: TaskId, dest: InstanceId) {
        let Some(job) = self.jobs.get(&tid.job) else {
            return;
        };
        let Some(spec) = job.spec.task(tid) else {
            return;
        };
        let checkpoint = spec.checkpoint_delay.scale(self.migration_delay_scale);
        let launch = spec.launch_delay.scale(self.migration_delay_scale);

        let Some(rt) = self.tasks.get_mut(&tid) else {
            return;
        };
        let was_running = rt.is_running();
        let had_instance = rt.assigned_to.is_some();
        let old = rt.assigned_to;

        if let Some(old_id) = old {
            if old_id == dest {
                return;
            }
            if let Some(set) = self.on_instance.get_mut(&old_id) {
                set.remove(&tid);
            }
            if was_running {
                let busy = self.now + checkpoint;
                let entry = self.busy_until.entry(old_id).or_insert(busy);
                *entry = (*entry).max(busy);
            }
        }

        let gen = {
            let g = self.task_gen.entry(tid).or_insert(0);
            *g += 1;
            *g
        };
        let depart = if was_running {
            self.now + checkpoint
        } else {
            self.now
        };
        let ready = depart.max(self.instance_ready_at(dest)) + launch;

        let rt = self.tasks.get_mut(&tid).unwrap();
        rt.assigned_to = Some(dest);
        rt.state = TaskState::InTransit {
            generation: gen,
            ready_at: ready,
        };
        if had_instance {
            rt.migrations += 1;
            self.migration_count += 1;
        }
        self.on_instance.entry(dest).or_default().insert(tid);
        self.push(
            ready,
            Event::TaskReady {
                task: tid,
                generation: gen,
            },
        );
    }

    /// Terminates drained instances whose departures have finished.
    fn try_terminations(&mut self) {
        let candidates: Vec<InstanceId> = self.draining.iter().copied().collect();
        for id in candidates {
            let empty = self
                .on_instance
                .get(&id)
                .map(|s| s.is_empty())
                .unwrap_or(true);
            if empty {
                let busy = self.busy_until.get(&id).copied().unwrap_or(self.now);
                let _ = self.cloud.terminate(id, busy.max(self.now));
                self.draining.remove(&id);
                self.on_instance.remove(&id);
                self.busy_until.remove(&id);
            }
        }
    }

    /// Builds the scheduler-facing observations for the current instant.
    fn build_observations(&self) -> Vec<JobObservation> {
        let mut obs = Vec::new();
        for (id, job) in &self.jobs {
            if job.is_done() {
                continue;
            }
            let mut contexts = Vec::new();
            let mut any_running = false;
            for spec in &job.spec.tasks {
                let Some(rt) = self.tasks.get(&spec.id) else {
                    continue;
                };
                if !rt.is_running() {
                    continue;
                }
                any_running = true;
                let others: Vec<WorkloadKind> = rt
                    .assigned_to
                    .and_then(|i| self.on_instance.get(&i))
                    .map(|set| {
                        set.iter()
                            .filter(|t| **t != spec.id)
                            .filter_map(|t| self.tasks.get(t))
                            .filter(|t| t.is_running())
                            .filter_map(|t| self.workload_of(t.id))
                            .collect()
                    })
                    .unwrap_or_default();
                contexts.push(TaskContext::new(spec.id, spec.workload, others));
            }
            if !any_running {
                continue;
            }
            let observed = if job.spec.gang_coupled {
                self.job_tput(job)
            } else {
                // Single-task jobs report the task's own throughput.
                job.spec
                    .tasks
                    .first()
                    .and_then(|s| {
                        self.tasks
                            .get(&s.id)
                            .map(|rt| self.task_tput(rt, s.workload))
                    })
                    .unwrap_or(0.0)
            };
            obs.push(JobObservation {
                job: *id,
                gang_coupled: job.spec.gang_coupled,
                observed_tput: observed,
                contexts,
            });
        }
        obs
    }

    /// Builds the scheduler context snapshot.
    fn build_snapshot(&self) -> (Vec<TaskSnapshot>, Vec<InstanceSnapshot>) {
        let mut tasks = Vec::new();
        for job in self.jobs.values() {
            if job.is_done() {
                continue;
            }
            for spec in &job.spec.tasks {
                let Some(rt) = self.tasks.get(&spec.id) else {
                    continue;
                };
                tasks.push(TaskSnapshot {
                    id: spec.id,
                    workload: spec.workload,
                    demand: spec.demand.clone(),
                    checkpoint_delay: spec.checkpoint_delay.scale(self.migration_delay_scale),
                    launch_delay: spec.launch_delay.scale(self.migration_delay_scale),
                    gang_size: job.spec.num_tasks() as u32,
                    gang_coupled: job.spec.gang_coupled,
                    assigned_to: rt.assigned_to,
                    remaining_hint: Some(job.remaining_hint()),
                });
            }
        }
        let instances: Vec<InstanceSnapshot> = self
            .cloud
            .live_instances(self.now)
            .filter(|i| !self.draining.contains(&i.id))
            .map(|i| InstanceSnapshot {
                id: i.id,
                type_id: i.type_id,
            })
            .collect();
        (tasks, instances)
    }

    /// Executes a plan: provisions new instances, transfers tasks, marks
    /// terminations.
    fn execute_plan(&mut self, plan: &Plan) {
        let mut target: BTreeMap<TaskId, InstanceId> = BTreeMap::new();
        for a in &plan.assignments {
            let inst = match a.instance {
                PlannedInstance::Existing(id) => id,
                PlannedInstance::New(ty) => {
                    match self.cloud.provision(
                        ProvisionRequest {
                            type_id: ty,
                            at: self.now,
                        },
                        &mut self.rng,
                    ) {
                        Ok(id) => {
                            self.on_instance.entry(id).or_default();
                            id
                        }
                        Err(_) => continue,
                    }
                }
            };
            for tid in &a.tasks {
                target.insert(*tid, inst);
            }
        }
        let moves: Vec<(TaskId, InstanceId)> = target
            .iter()
            .filter(|(tid, dest)| {
                self.tasks
                    .get(tid)
                    .map(|rt| rt.assigned_to != Some(**dest))
                    .unwrap_or(false)
            })
            .map(|(t, d)| (*t, *d))
            .collect();
        for (tid, dest) in moves {
            self.transfer_task(tid, dest);
        }
        for id in &plan.terminate {
            // Defensive: never drain an instance the plan also assigns to.
            let assigned_here = plan
                .assignments
                .iter()
                .any(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == *id));
            if !assigned_here {
                self.draining.insert(*id);
            }
        }
        self.try_terminations();
    }

    fn handle_round(&mut self) {
        self.round_pending = false;
        let observations = self.build_observations();
        self.scheduler.observe(&observations);
        let (tasks, instances) = self.build_snapshot();
        let ctx = SchedulerContext {
            now: self.now,
            catalog: &self.catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = self.scheduler.plan(&ctx);
        self.rounds += 1;
        if self.rounds % 50 == 0 && std::env::var_os("EVA_SIM_TRACE_STATE").is_some() {
            let live: Vec<_> = self.cloud.live_instances(self.now).collect();
            let rate: f64 = live
                .iter()
                .filter_map(|i| self.catalog.get(i.type_id))
                .map(|t| t.hourly_cost.as_dollars())
                .sum();
            let running = self.tasks.values().filter(|t| t.is_running()).count();
            let transit = self
                .tasks
                .values()
                .filter(|t| matches!(t.state, TaskState::InTransit { .. }))
                .count();
            eprintln!(
                "round {:>5} t={:>7.2}h tasks r{running}/x{transit} inst {} rate ${rate:.0}/h",
                self.rounds,
                self.now.as_hours_f64(),
                live.len()
            );
        }
        if plan.full_reconfiguration {
            self.full_rounds += 1;
        }
        self.execute_plan(&plan);
        self.recompute_completions();

        let active = self.jobs.values().any(|j| !j.is_done());
        if active {
            self.schedule_round(self.now + self.round_period);
        } else if self.arrivals_remaining == 0 {
            // Final cleanup: drain everything still alive.
            let live: Vec<InstanceId> = self.cloud.live_instances(self.now).map(|i| i.id).collect();
            self.draining.extend(live);
            self.try_terminations();
        }
    }
}

/// Runs one simulation experiment end to end.
///
/// Jobs whose tasks fit no catalog instance type are dropped up front with
/// a warning (the paper likewise removes them from the trace, §6.1);
/// otherwise they could never complete and the simulation would not
/// terminate.
pub fn run_simulation(cfg: &SimConfig) -> SimReport {
    let catalog = Catalog::aws_eval_2025();
    let workloads = WorkloadCatalog::table7();
    let feasible: Vec<_> = cfg
        .trace
        .jobs()
        .iter()
        .filter(|job| {
            let ok = job
                .tasks
                .iter()
                .all(|t| catalog.cheapest_fit(&t.demand).is_some());
            if !ok {
                eprintln!("warning: dropping unschedulable {}", job.id);
            }
            ok
        })
        .cloned()
        .collect();
    let trace = Trace::new(feasible);
    let cfg = SimConfig {
        trace,
        ..cfg.clone()
    };
    let cfg = &cfg;
    let interference = match cfg.interference {
        InterferenceSpec::Measured => InterferenceModel::measured(&workloads),
        InterferenceSpec::Uniform(t) => InterferenceModel::uniform(&workloads, t),
    };
    let scheduler: Box<dyn Scheduler> = match &cfg.scheduler {
        SchedulerKind::NoPacking => Box::new(NoPackingScheduler::new()),
        SchedulerKind::Stratus => Box::new(StratusScheduler::new()),
        SchedulerKind::Synergy => Box::new(SynergyScheduler::new()),
        SchedulerKind::Owl => {
            // Owl receives the ground-truth pairwise profile exclusively.
            let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind).collect();
            let model = interference.clone();
            let profile = OracleProfile::from_fn(&kinds, |a, b| model.pairwise(a, b));
            Box::new(OwlScheduler::new(profile))
        }
        SchedulerKind::Eva(cfg) => Box::new(EvaScheduler::new(cfg.clone())),
    };
    let delays = DelayModel::table1(cfg.fidelity);
    let cloud = CloudProvider::new(catalog.clone(), delays);

    let mut sim = Simulation {
        catalog,
        cloud,
        rng: StdRng::seed_from_u64(cfg.seed),
        interference,
        scheduler,
        round_period: cfg.round_period,
        migration_delay_scale: cfg.migration_delay_scale,
        jobs: BTreeMap::new(),
        tasks: BTreeMap::new(),
        task_gen: BTreeMap::new(),
        on_instance: BTreeMap::new(),
        busy_until: BTreeMap::new(),
        draining: BTreeSet::new(),
        events: BinaryHeap::new(),
        seq: 0,
        now: SimTime::ZERO,
        round_pending: false,
        arrivals_remaining: cfg.trace.len(),
        task_running_hours: 0.0,
        alloc_integral: [0.0; 3],
        capacity_integral: [0.0; 3],
        migration_count: 0,
        total_tasks: cfg.trace.jobs().iter().map(|j| j.num_tasks()).sum(),
        rounds: 0,
        full_rounds: 0,
    };

    for (idx, job) in cfg.trace.jobs().iter().enumerate() {
        sim.push(job.arrival, Event::Arrival(idx));
    }

    while let Some(Reverse(entry)) = sim.events.pop() {
        sim.advance_to(entry.at);
        match entry.event {
            Event::Arrival(idx) => {
                let spec = cfg.trace.jobs()[idx].clone();
                sim.arrivals_remaining -= 1;
                for t in &spec.tasks {
                    sim.tasks.insert(t.id, TaskRuntime::new(t.id));
                }
                sim.jobs.insert(spec.id, JobProgress::new(spec));
                sim.schedule_round(sim.now);
            }
            Event::TaskReady { task, generation } => {
                let matches = sim
                    .tasks
                    .get(&task)
                    .map(|rt| {
                        matches!(rt.state, TaskState::InTransit { generation: g, .. } if g == generation)
                    })
                    .unwrap_or(false);
                if matches {
                    sim.tasks.get_mut(&task).unwrap().state = TaskState::Running;
                    sim.recompute_completions();
                }
            }
            Event::JobDone { job, generation } => {
                let valid = sim
                    .jobs
                    .get(&job)
                    .map(|j| !j.is_done() && j.completion_generation == generation)
                    .unwrap_or(false);
                if valid {
                    let task_ids: Vec<TaskId> = {
                        let j = sim.jobs.get_mut(&job).unwrap();
                        debug_assert!(j.remaining_hours < 1e-6, "early completion event");
                        j.completed_at = Some(sim.now);
                        j.spec.tasks.iter().map(|t| t.id).collect()
                    };
                    for tid in task_ids {
                        if let Some(rt) = sim.tasks.get_mut(&tid) {
                            rt.state = TaskState::Done;
                            if let Some(inst) = rt.assigned_to.take() {
                                if let Some(set) = sim.on_instance.get_mut(&inst) {
                                    set.remove(&tid);
                                }
                            }
                        }
                    }
                    sim.try_terminations();
                    sim.recompute_completions();
                    // A round will clean up the freed instances.
                    sim.schedule_round(sim.now + sim.round_period);
                }
            }
            Event::Round => sim.handle_round(),
        }
    }

    // Safety: nothing should remain live.
    let leftovers: Vec<InstanceId> = sim.cloud.live_instances(sim.now).map(|i| i.id).collect();
    for id in leftovers {
        let _ = sim.cloud.terminate(id, sim.now);
    }

    let end = sim
        .cloud
        .instances()
        .filter_map(|i| i.terminated_at)
        .max()
        .unwrap_or(sim.now)
        .max(sim.now);

    let completed: Vec<&JobProgress> = sim.jobs.values().filter(|j| j.is_done()).collect();
    let n = completed.len().max(1) as f64;
    let avg_jct_hours = completed.iter().filter_map(|j| j.jct_hours()).sum::<f64>() / n;
    let avg_idle_hours = completed.iter().map(|j| j.idle_hours).sum::<f64>() / n;
    let avg_norm_tput = completed.iter().map(|j| j.mean_tput()).sum::<f64>() / n;

    let uptimes: Vec<f64> = sim
        .cloud
        .instances()
        .map(|i| i.uptime(end).as_hours_f64())
        .collect();
    let billed_hours: f64 = uptimes.iter().sum();

    let alloc = |r: usize| {
        if sim.capacity_integral[r] <= 0.0 {
            0.0
        } else {
            sim.alloc_integral[r] / sim.capacity_integral[r]
        }
    };

    let first_arrival = cfg
        .trace
        .jobs()
        .first()
        .map(|j| j.arrival)
        .unwrap_or(SimTime::ZERO);

    SimReport {
        scheduler: sim.scheduler.name().to_string(),
        jobs_completed: completed.len(),
        total_cost_dollars: sim.cloud.total_bill(end).as_dollars(),
        instances_launched: sim.cloud.launch_count(),
        migrations_per_task: sim.migration_count as f64 / sim.total_tasks.max(1) as f64,
        avg_jct_hours,
        avg_idle_hours,
        avg_norm_tput,
        tasks_per_instance: if billed_hours > 0.0 {
            sim.task_running_hours / billed_hours
        } else {
            0.0
        },
        gpu_alloc: alloc(0),
        cpu_alloc: alloc(1),
        ram_alloc: alloc(2),
        uptime_cdf: empirical_cdf(uptimes, 100),
        full_reconfig_rate: if sim.rounds > 0 {
            sim.full_rounds as f64 / sim.rounds as f64
        } else {
            0.0
        },
        makespan_hours: end.duration_since(first_arrival).as_hours_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_workloads::SyntheticTraceConfig;

    fn tiny_trace(jobs: usize) -> Trace {
        let cfg = SyntheticTraceConfig {
            num_jobs: jobs,
            mean_interarrival: SimDuration::from_mins(10),
            duration: eva_workloads::UniformHours::new(0.2, 0.6),
            single_task_only: false,
        };
        cfg.generate(99)
    }

    fn run(kind: SchedulerKind, jobs: usize) -> SimReport {
        let mut cfg = SimConfig::new(tiny_trace(jobs), kind);
        cfg.fidelity = FidelityMode::Nominal;
        run_simulation(&cfg)
    }

    #[test]
    fn all_jobs_complete_under_every_scheduler() {
        for kind in [
            SchedulerKind::NoPacking,
            SchedulerKind::Stratus,
            SchedulerKind::Synergy,
            SchedulerKind::Owl,
            SchedulerKind::Eva(EvaConfig::eva()),
        ] {
            let label = kind.label();
            let report = run(kind, 10);
            assert_eq!(report.jobs_completed, 10, "{label}");
            assert!(report.total_cost_dollars > 0.0, "{label}");
            assert!(report.avg_jct_hours > 0.0, "{label}");
        }
    }

    #[test]
    fn no_packing_has_no_migrations_or_colocation() {
        let report = run(SchedulerKind::NoPacking, 8);
        assert_eq!(report.migrations_per_task, 0.0);
        // Setup time means the ratio dips below 1 task per billed hour.
        assert!(report.tasks_per_instance <= 1.0 + 1e-9);
        assert!(report.avg_norm_tput > 0.999, "no co-location, no slowdown");
    }

    #[test]
    fn packing_schedulers_cut_cost_versus_no_packing() {
        // A dense trace with enough concurrency for packing to matter.
        let cfg = SyntheticTraceConfig {
            num_jobs: 40,
            mean_interarrival: SimDuration::from_mins(4),
            duration: eva_workloads::UniformHours::new(1.0, 2.0),
            single_task_only: false,
        };
        let trace = cfg.generate(123);
        let mut base_cfg = SimConfig::new(trace.clone(), SchedulerKind::NoPacking);
        base_cfg.fidelity = FidelityMode::Nominal;
        let mut eva_cfg = SimConfig::new(trace, SchedulerKind::Eva(EvaConfig::eva()));
        eva_cfg.fidelity = FidelityMode::Nominal;
        let base = run_simulation(&base_cfg);
        let eva = run_simulation(&eva_cfg);
        assert!(
            eva.total_cost_dollars < base.total_cost_dollars,
            "Eva {} vs No-Packing {}",
            eva.total_cost_dollars,
            base.total_cost_dollars
        );
        assert!(eva.tasks_per_instance > base.tasks_per_instance);
    }

    #[test]
    fn jct_reflects_interference_for_packers() {
        let base = run(SchedulerKind::NoPacking, 12);
        let eva = run(SchedulerKind::Eva(EvaConfig::eva()), 12);
        // Packing can only slow jobs down (never below ground truth).
        assert!(eva.avg_jct_hours + 1e-9 >= base.avg_jct_hours * 0.99);
        assert!(eva.avg_norm_tput <= 1.0 + 1e-9);
    }

    #[test]
    fn uptime_cdf_is_well_formed() {
        let report = run(SchedulerKind::Stratus, 10);
        assert!(!report.uptime_cdf.is_empty());
        assert!(report.uptime_cdf.last().unwrap().density == 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig::new(tiny_trace(8), SchedulerKind::Eva(EvaConfig::eva()));
        let a = run_simulation(&cfg);
        let b = run_simulation(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_interference_sweep_slows_packers() {
        let trace = tiny_trace(12);
        let mut mild = SimConfig::new(trace.clone(), SchedulerKind::Eva(EvaConfig::eva_rp()));
        mild.interference = InterferenceSpec::Uniform(1.0);
        mild.fidelity = FidelityMode::Nominal;
        let mut harsh = mild.clone();
        harsh.interference = InterferenceSpec::Uniform(0.8);
        let mild_r = run_simulation(&mild);
        let harsh_r = run_simulation(&harsh);
        // Eva-RP ignores interference, so harsher ground truth raises JCT.
        assert!(harsh_r.avg_jct_hours >= mild_r.avg_jct_hours - 1e-9);
        assert!(harsh_r.avg_norm_tput <= mild_r.avg_norm_tput + 1e-9);
    }

    #[test]
    fn migration_scale_reduces_eva_migrations() {
        // Needs enough jobs for the rate difference to rise above noise.
        let cfg = SyntheticTraceConfig {
            num_jobs: 60,
            mean_interarrival: SimDuration::from_mins(5),
            duration: eva_workloads::UniformHours::new(0.5, 2.0),
            single_task_only: true,
        };
        let trace = cfg.generate(321);
        let mut cheap = SimConfig::new(trace.clone(), SchedulerKind::Eva(EvaConfig::eva()));
        cheap.fidelity = FidelityMode::Nominal;
        let mut dear = cheap.clone();
        dear.migration_delay_scale = 32.0;
        let cheap_r = run_simulation(&cheap);
        let dear_r = run_simulation(&dear);
        assert!(
            dear_r.migrations_per_task <= cheap_r.migrations_per_task + 0.05,
            "dearer migration must not increase migration rate: {} vs {}",
            dear_r.migrations_per_task,
            cheap_r.migrations_per_task
        );
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use eva_types::{DemandSpec, JobId, JobSpec, ResourceVector, TaskId, TaskSpec};

    #[test]
    fn unschedulable_jobs_are_dropped_not_hung() {
        // A job demanding 99 GPUs fits nothing; the sim must drop it and
        // still complete the feasible one.
        let mk = |id: u64, gpus: u32| JobSpec {
            id: JobId(id),
            arrival: SimTime::ZERO,
            tasks: vec![TaskSpec {
                id: TaskId::new(JobId(id), 0),
                workload: eva_types::WorkloadKind(0),
                demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpus, 4, 8)),
                checkpoint_delay: SimDuration::from_secs(2),
                launch_delay: SimDuration::from_secs(5),
            }],
            duration_at_full_tput: SimDuration::from_mins(30),
            gang_coupled: false,
        };
        let trace = Trace::new(vec![mk(1, 99), mk(2, 1)]);
        let report = run_simulation(&SimConfig::new(trace, SchedulerKind::NoPacking));
        assert_eq!(report.jobs_completed, 1);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = run_simulation(&SimConfig::new(
            Trace::new(vec![]),
            SchedulerKind::NoPacking,
        ));
        assert_eq!(report.jobs_completed, 0);
        assert_eq!(report.total_cost_dollars, 0.0);
        assert_eq!(report.instances_launched, 0);
    }
}
