//! Experiment configuration and the one-shot simulation entry point.
//!
//! The heavy lifting lives in the layered modules: [`crate::engine`]
//! (clock + event queue + RNG streams), [`crate::world`] (the
//! [`crate::ClusterSim`] cluster model), and [`crate::sweep`] (parallel
//! experiment grids). [`run_simulation`] remains the stable single-cell
//! entry point used throughout the repo.

use eva_cloud::FidelityMode;
use eva_core::EvaConfig;
use eva_types::SimDuration;
use eva_workloads::TraceHandle;

use crate::metrics::SimReport;
use crate::world::ClusterSim;

/// Which scheduler drives the run.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// One reservation-price instance per task.
    NoPacking,
    /// Runtime-binned packing with perfect duration estimates.
    Stratus,
    /// Interference-aware best-fit packing.
    Synergy,
    /// Pair-profile scheduling (receives the ground-truth profile).
    Owl,
    /// Eva with the given configuration.
    Eva(EvaConfig),
}

impl SchedulerKind {
    /// Display name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::NoPacking => "No-Packing",
            SchedulerKind::Stratus => "Stratus",
            SchedulerKind::Synergy => "Synergy",
            SchedulerKind::Owl => "Owl",
            SchedulerKind::Eva(_) => "Eva",
        }
    }

    /// Resolves a CLI-style scheduler name (the canonical parser shared by
    /// the `eva` CLI and the `exp_*` binaries).
    pub fn from_name(name: &str) -> Result<SchedulerKind, String> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "eva" => SchedulerKind::Eva(EvaConfig::eva()),
            "eva-rp" => SchedulerKind::Eva(EvaConfig::eva_rp()),
            "eva-single" => SchedulerKind::Eva(EvaConfig::eva_single()),
            "eva-full-only" => SchedulerKind::Eva(EvaConfig::without_partial()),
            "eva-partial-only" => SchedulerKind::Eva(EvaConfig::without_full()),
            "no-packing" | "nopacking" => SchedulerKind::NoPacking,
            "stratus" => SchedulerKind::Stratus,
            "synergy" => SchedulerKind::Synergy,
            "owl" => SchedulerKind::Owl,
            other => return Err(format!("unknown scheduler `{other}`")),
        })
    }

    /// Every name [`SchedulerKind::from_name`] accepts (canonical spellings
    /// only), for help text and validation.
    pub fn names() -> &'static [&'static str] {
        &[
            "eva",
            "eva-rp",
            "eva-single",
            "eva-full-only",
            "eva-partial-only",
            "no-packing",
            "stratus",
            "synergy",
            "owl",
        ]
    }

    /// The five schedulers of §6.1 in the paper's reporting order
    /// (No-Packing first: it is the normalization baseline).
    pub fn paper_set() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::NoPacking,
            SchedulerKind::Stratus,
            SchedulerKind::Synergy,
            SchedulerKind::Owl,
            SchedulerKind::Eva(EvaConfig::eva()),
        ]
    }
}

/// Ground-truth interference specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterferenceSpec {
    /// The measured Figure 1 matrix.
    Measured,
    /// Uniform pairwise throughput (the §6.4 sweep).
    Uniform(f64),
}

impl InterferenceSpec {
    /// Stable textual form used in sweep-cell keys.
    pub fn label(&self) -> String {
        match self {
            InterferenceSpec::Measured => "measured".to_string(),
            InterferenceSpec::Uniform(t) => format!("uniform({t})"),
        }
    }
}

/// One simulation experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The job trace, shared by handle — cloning a `SimConfig` is a
    /// reference-count bump, never a job-vector copy.
    pub trace: TraceHandle,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// RNG seed (delays).
    pub seed: u64,
    /// Scheduling period (the paper uses 5 minutes).
    pub round_period: SimDuration,
    /// Delay-model fidelity (Table 12 contrasts these).
    pub fidelity: FidelityMode,
    /// Ground-truth interference.
    pub interference: InterferenceSpec,
    /// Multiplier on per-task checkpoint/launch delays (Figure 5).
    pub migration_delay_scale: f64,
    /// Adversarial fault axis: which regime (if any) to compile into a
    /// pre-run [`crate::FaultPlan`] and inject on both backends.
    pub faults: crate::FaultSpec,
    /// Debug-only reference semantics: advance every active job eagerly
    /// at each clock segment and accumulate allocation/capacity
    /// integrals by full scan, instead of the O(changed) dirty-set
    /// path. Completion rescheduling stays dirty-triggered in both
    /// modes — re-deriving a clean job's due time from a later anchor
    /// can flip by ±1 ms of rounding. Output is byte-identical either
    /// way (the lazy-oracle proptest holds the two in lockstep); this
    /// exists so that equivalence stays testable. Not a sweep axis —
    /// cache fingerprints ignore it.
    pub reference_full_scan: bool,
    /// Release each completed job's arena slots back to a free list
    /// after folding its report contribution into the completed-job
    /// log, so live state tracks the in-flight window instead of every
    /// job ever ingested (streaming service mode; `eva serve` turns it
    /// on). Reports are byte-identical either way — the retirement
    /// lockstep test holds the two in lockstep per event. Not a sweep
    /// axis — cache fingerprints ignore it.
    pub retire_completed: bool,
}

impl SimConfig {
    /// Defaults matching the paper's main experiments. Accepts an owned
    /// [`eva_workloads::Trace`] or an existing [`TraceHandle`].
    pub fn new(trace: impl Into<TraceHandle>, scheduler: SchedulerKind) -> Self {
        SimConfig {
            trace: trace.into(),
            scheduler,
            seed: 42,
            round_period: SimDuration::from_mins(5),
            fidelity: FidelityMode::Stochastic,
            interference: InterferenceSpec::Measured,
            migration_delay_scale: 1.0,
            faults: crate::FaultSpec::none(),
            reference_full_scan: false,
            retire_completed: false,
        }
    }
}

/// Runs one simulation experiment end to end.
///
/// Thin wrapper over [`ClusterSim`]: builds the world for `cfg` and steps
/// it to completion. Kept as the stable entry point every experiment
/// binary and the sweep layer call.
pub fn run_simulation(cfg: &SimConfig) -> SimReport {
    ClusterSim::new(cfg).run()
}

/// Runs one experiment while recording the control-plane action stream
/// (see [`crate::script::ExecScript`]) — the schedule the live backend
/// replays through the real master/worker runtime.
pub fn run_recorded(cfg: &SimConfig) -> (SimReport, crate::script::ExecScript) {
    let mut sim = ClusterSim::new(cfg);
    sim.enable_recording();
    while sim.step() {}
    let script = sim.take_script();
    (crate::report::finalize(sim), script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_workloads::{SyntheticTraceConfig, Trace};

    fn tiny_trace(jobs: usize) -> Trace {
        let cfg = SyntheticTraceConfig {
            num_jobs: jobs,
            mean_interarrival: SimDuration::from_mins(10),
            duration: eva_workloads::UniformHours::new(0.2, 0.6),
            single_task_only: false,
        };
        cfg.generate(99)
    }

    fn run(kind: SchedulerKind, jobs: usize) -> SimReport {
        let mut cfg = SimConfig::new(tiny_trace(jobs), kind);
        cfg.fidelity = FidelityMode::Nominal;
        run_simulation(&cfg)
    }

    #[test]
    fn all_jobs_complete_under_every_scheduler() {
        for kind in SchedulerKind::paper_set() {
            let label = kind.label();
            let report = run(kind, 10);
            assert_eq!(report.jobs_completed, 10, "{label}");
            assert!(report.total_cost_dollars > 0.0, "{label}");
            assert!(report.avg_jct_hours > 0.0, "{label}");
        }
    }

    #[test]
    fn no_packing_has_no_migrations_or_colocation() {
        let report = run(SchedulerKind::NoPacking, 8);
        assert_eq!(report.migrations_per_task, 0.0);
        // Setup time means the ratio dips below 1 task per billed hour.
        assert!(report.tasks_per_instance <= 1.0 + 1e-9);
        assert!(report.avg_norm_tput > 0.999, "no co-location, no slowdown");
    }

    #[test]
    fn packing_schedulers_cut_cost_versus_no_packing() {
        // A dense trace with enough concurrency for packing to matter.
        let cfg = SyntheticTraceConfig {
            num_jobs: 40,
            mean_interarrival: SimDuration::from_mins(4),
            duration: eva_workloads::UniformHours::new(1.0, 2.0),
            single_task_only: false,
        };
        let trace = cfg.generate(123);
        let mut base_cfg = SimConfig::new(trace.clone(), SchedulerKind::NoPacking);
        base_cfg.fidelity = FidelityMode::Nominal;
        let mut eva_cfg = SimConfig::new(trace, SchedulerKind::Eva(EvaConfig::eva()));
        eva_cfg.fidelity = FidelityMode::Nominal;
        let base = run_simulation(&base_cfg);
        let eva = run_simulation(&eva_cfg);
        assert!(
            eva.total_cost_dollars < base.total_cost_dollars,
            "Eva {} vs No-Packing {}",
            eva.total_cost_dollars,
            base.total_cost_dollars
        );
        assert!(eva.tasks_per_instance > base.tasks_per_instance);
    }

    #[test]
    fn jct_reflects_interference_for_packers() {
        let base = run(SchedulerKind::NoPacking, 12);
        let eva = run(SchedulerKind::Eva(EvaConfig::eva()), 12);
        // Packing can only slow jobs down (never below ground truth).
        assert!(eva.avg_jct_hours + 1e-9 >= base.avg_jct_hours * 0.99);
        assert!(eva.avg_norm_tput <= 1.0 + 1e-9);
    }

    #[test]
    fn uptime_cdf_is_well_formed() {
        let report = run(SchedulerKind::Stratus, 10);
        assert!(!report.uptime_cdf.is_empty());
        assert!(report.uptime_cdf.last().unwrap().density == 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig::new(tiny_trace(8), SchedulerKind::Eva(EvaConfig::eva()));
        let a = run_simulation(&cfg);
        let b = run_simulation(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_interference_sweep_slows_packers() {
        let trace = tiny_trace(12);
        let mut mild = SimConfig::new(trace.clone(), SchedulerKind::Eva(EvaConfig::eva_rp()));
        mild.interference = InterferenceSpec::Uniform(1.0);
        mild.fidelity = FidelityMode::Nominal;
        let mut harsh = mild.clone();
        harsh.interference = InterferenceSpec::Uniform(0.8);
        let mild_r = run_simulation(&mild);
        let harsh_r = run_simulation(&harsh);
        // Eva-RP ignores interference, so harsher ground truth raises JCT.
        assert!(harsh_r.avg_jct_hours >= mild_r.avg_jct_hours - 1e-9);
        assert!(harsh_r.avg_norm_tput <= mild_r.avg_norm_tput + 1e-9);
    }

    #[test]
    fn migration_scale_reduces_eva_migrations() {
        // Needs enough jobs for the rate difference to rise above noise.
        let cfg = SyntheticTraceConfig {
            num_jobs: 60,
            mean_interarrival: SimDuration::from_mins(5),
            duration: eva_workloads::UniformHours::new(0.5, 2.0),
            single_task_only: true,
        };
        let trace = cfg.generate(321);
        let mut cheap = SimConfig::new(trace.clone(), SchedulerKind::Eva(EvaConfig::eva()));
        cheap.fidelity = FidelityMode::Nominal;
        let mut dear = cheap.clone();
        dear.migration_delay_scale = 32.0;
        let cheap_r = run_simulation(&cheap);
        let dear_r = run_simulation(&dear);
        assert!(
            dear_r.migrations_per_task <= cheap_r.migrations_per_task + 0.05,
            "dearer migration must not increase migration rate: {} vs {}",
            dear_r.migrations_per_task,
            cheap_r.migrations_per_task
        );
    }

    #[test]
    fn scheduler_names_round_trip() {
        for name in SchedulerKind::names() {
            let kind = SchedulerKind::from_name(name).unwrap();
            assert!(
                name.starts_with(&kind.label().to_ascii_lowercase()[..3])
                    || kind.label() == "Eva",
                "{name} resolves to {}",
                kind.label()
            );
        }
        assert_eq!(
            SchedulerKind::from_name("NoPacking").unwrap(),
            SchedulerKind::NoPacking,
            "case-insensitive alias"
        );
        assert!(SchedulerKind::from_name("slurm").is_err());
    }

    #[test]
    fn interference_labels_are_stable() {
        assert_eq!(InterferenceSpec::Measured.label(), "measured");
        assert_eq!(InterferenceSpec::Uniform(0.9).label(), "uniform(0.9)");
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use eva_types::{
        DemandSpec, JobId, JobSpec, ResourceVector, SimTime, TaskId, TaskSpec,
    };
    use eva_workloads::Trace;

    #[test]
    fn unschedulable_jobs_are_dropped_not_hung() {
        // A job demanding 99 GPUs fits nothing; the sim must drop it and
        // still complete the feasible one.
        let mk = |id: u64, gpus: u32| JobSpec {
            id: JobId(id),
            arrival: SimTime::ZERO,
            tasks: vec![TaskSpec {
                id: TaskId::new(JobId(id), 0),
                workload: eva_types::WorkloadKind(0),
                demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpus, 4, 8)),
                checkpoint_delay: SimDuration::from_secs(2),
                launch_delay: SimDuration::from_secs(5),
            }],
            duration_at_full_tput: SimDuration::from_mins(30),
            gang_coupled: false,
        };
        let trace = Trace::new(vec![mk(1, 99), mk(2, 1)]);
        let report = run_simulation(&SimConfig::new(trace, SchedulerKind::NoPacking));
        assert_eq!(report.jobs_completed, 1);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = run_simulation(&SimConfig::new(
            Trace::new(vec![]),
            SchedulerKind::NoPacking,
        ));
        assert_eq!(report.jobs_completed, 0);
        assert_eq!(report.total_cost_dollars, 0.0);
        assert_eq!(report.instances_launched, 0);
    }
}
