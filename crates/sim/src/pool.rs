//! The generic parallel cell executor behind every sweep.
//!
//! [`CellPool`] is the machinery [`crate::SweepRunner`] and the
//! solver-level micro-benchmark sweeps in `eva-bench` share: given `n`
//! logical cells described by closures, it
//!
//! 1. **deduplicates** cells whose fingerprint matches (the first
//!    occurrence becomes the representative; its result fans out),
//! 2. consults the optional persistent [`ReportCache`] per
//!    representative — hits skip execution entirely,
//! 3. claims the remaining representatives **longest-first** from a
//!    shared atomic cursor across scoped worker threads, and
//! 4. merges results back **in logical cell order**, so the output — and
//!    any JSON derived from it — is byte-identical for any thread count
//!    and any cache state.
//!
//! Determinism requires the usual sweep contract: a cell's result must be
//! a pure function of its fingerprint (all randomness seeded from the
//! cell's own configuration).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::cache::{ClaimAttempt, ReportCache};

/// The two timing knobs of a federated run: when a peer's claim counts
/// as stale (stealable), and how often to re-poll the cache while
/// waiting on a live peer.
#[derive(Debug, Clone, Copy)]
pub struct ClaimTiming {
    pub stale: Duration,
    pub poll: Duration,
}

/// Where a federated process starts its phase-1 sweep of the
/// longest-first claim order. With every process starting at index 0
/// the whole fleet races for the same head cells, and most early
/// `try_claim`s land on a peer's fresh claim — a *contested* attempt
/// that burns a filesystem round-trip and defers the cell to phase 2.
/// Striding rank `r` of `p` processes to offset `n·r/p` spreads the
/// fleet across disjoint prefixes of the order; each sweep still visits
/// all `n` entries (indices wrap mod `n`), so peer publication,
/// stealing, and phase 2 behave exactly as before.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClaimStride {
    /// This process's 0-based rank in the fleet (0 = coordinator).
    pub rank: usize,
    /// Total processes sweeping the shared cache (`< 2` disables
    /// striding).
    pub procs: usize,
}

impl ClaimStride {
    /// Starting index into a claim order of length `n`.
    pub fn offset(&self, n: usize) -> usize {
        if n == 0 || self.procs < 2 {
            return 0;
        }
        n * self.rank.min(self.procs - 1) / self.procs
    }
}

/// What a pool run did: logical cells, unique representatives, and how
/// many representatives were actually executed vs served from the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Logical cells requested.
    pub total: usize,
    /// Representatives after deduplication.
    pub unique: usize,
    /// Representatives actually computed this run.
    pub executed: usize,
    /// Representatives served from the persistent cache.
    pub cache_hits: usize,
    /// Representatives published by a peer process during a federated
    /// run (they were missing when this process planned, and appeared in
    /// the cache while it executed). Always 0 outside federation.
    pub peer: usize,
    /// Phase-1 claim attempts that found a live peer already holding the
    /// claim — wasted filesystem round-trips that defer the cell to
    /// phase 2. [`ClaimStride`] prefix biasing exists to drive this
    /// down. Always 0 outside federation.
    pub contested: usize,
}

impl PoolStats {
    /// True when every representative came from the cache (a fully warm
    /// rerun — the CI cache check asserts this).
    pub fn all_cached(&self) -> bool {
        self.unique > 0 && self.executed == 0
    }

    /// One-line human summary, e.g. `5 unique of 8 cells: 2 simulated, 3 cached`
    /// (federated runs append `, N from peers`).
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} unique of {} cells: {} simulated, {} cached",
            self.unique, self.total, self.executed, self.cache_hits
        );
        if self.peer > 0 {
            line.push_str(&format!(", {} from peers", self.peer));
        }
        if self.contested > 0 {
            line.push_str(&format!(", {} contested", self.contested));
        }
        line
    }
}

/// The deduplicated execution schedule of a cell set: which index
/// represents each cell, and the representative execution order
/// (longest first, index-tiebroken — fully deterministic).
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// For every cell index, the index of its representative.
    pub rep_of: Vec<usize>,
    /// Representative indices in execution order.
    pub order: Vec<usize>,
    /// Memoized fingerprint of every cell. The fingerprint closure runs
    /// exactly once per cell — dedup and every later cache lookup reuse
    /// these strings instead of re-deriving them.
    pub keys: Vec<String>,
}

impl RunPlan {
    /// Builds the plan from per-cell fingerprint and cost functions.
    /// `fingerprint` is invoked once per cell; the strings are kept on
    /// the plan ([`RunPlan::keys`]) for cache keying.
    pub fn build(
        count: usize,
        fingerprint: &(dyn Fn(usize) -> String + Sync),
        cost: &(dyn Fn(usize) -> u64 + Sync),
    ) -> RunPlan {
        let keys: Vec<String> = (0..count).map(fingerprint).collect();
        let mut first: BTreeMap<&str, usize> = BTreeMap::new();
        let mut rep_of = Vec::with_capacity(count);
        for (i, key) in keys.iter().enumerate() {
            rep_of.push(*first.entry(key.as_str()).or_insert(i));
        }
        let mut order: Vec<usize> = first.into_values().collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(cost(i)), i));
        RunPlan { rep_of, order, keys }
    }

    /// Cells that actually execute after deduplication.
    pub fn unique_count(&self) -> usize {
        self.order.len()
    }
}

/// Multi-threaded, deduplicating, cache-backed executor for generic
/// cells.
#[derive(Debug, Clone, Copy)]
pub struct CellPool {
    threads: usize,
}

impl CellPool {
    /// A pool over `threads` workers; 0 selects the machine's available
    /// parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        CellPool { threads }
    }

    /// The worker count this pool resolved to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `count` cells and returns their results in cell order plus
    /// execution stats.
    ///
    /// * `fingerprint(i)` — the cell's work identity: equal fingerprints
    ///   mean byte-identical results, so only the first runs.
    /// * `cost(i)` — relative runtime estimate for longest-first claiming.
    /// * `cache` — optional persistent store consulted (and fed) per
    ///   representative, keyed by the fingerprint. The fingerprint must
    ///   therefore be **content-based** (stable across processes and
    ///   experiments), not positional.
    /// * `run(i)` — computes the cell; must be a pure function of the
    ///   fingerprint.
    pub fn run<R>(
        &self,
        count: usize,
        fingerprint: &(dyn Fn(usize) -> String + Sync),
        cost: &(dyn Fn(usize) -> u64 + Sync),
        cache: Option<&ReportCache>,
        run: &(dyn Fn(usize) -> R + Sync),
    ) -> (Vec<R>, PoolStats)
    where
        R: Clone + Send + Serialize + Deserialize,
    {
        let (results, _, stats) = self.run_flagged(count, fingerprint, cost, cache, run);
        (results, stats)
    }

    /// [`CellPool::run`], additionally reporting **per logical cell**
    /// whether its value was replayed from the persistent cache rather
    /// than computed this run (duplicates inherit their representative's
    /// flag). Timing-sensitive sweeps use this to stamp replayed rows in
    /// their artifacts, so downstream consumers can tell a stored
    /// measurement from a fresh one.
    pub fn run_flagged<R>(
        &self,
        count: usize,
        fingerprint: &(dyn Fn(usize) -> String + Sync),
        cost: &(dyn Fn(usize) -> u64 + Sync),
        cache: Option<&ReportCache>,
        run: &(dyn Fn(usize) -> R + Sync),
    ) -> (Vec<R>, Vec<bool>, PoolStats)
    where
        R: Clone + Send + Serialize + Deserialize,
    {
        let plan = RunPlan::build(count, fingerprint, cost);
        let slots: Vec<Mutex<Option<(R, bool)>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let executed = AtomicUsize::new(0);
        let cache_hits = AtomicUsize::new(0);
        let workers = self.threads.min(plan.order.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = plan.order.get(k) else {
                        break;
                    };
                    let result = match cache {
                        Some(cache) => {
                            let key = &plan.keys[i];
                            match cache.lookup::<R>(key) {
                                Some(hit) => {
                                    cache_hits.fetch_add(1, Ordering::Relaxed);
                                    (hit, true)
                                }
                                None => {
                                    executed.fetch_add(1, Ordering::Relaxed);
                                    let fresh = run(i);
                                    cache.store(key, &fresh);
                                    (fresh, false)
                                }
                            }
                        }
                        None => {
                            executed.fetch_add(1, Ordering::Relaxed);
                            (run(i), false)
                        }
                    };
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        let representatives: Vec<Option<(R, bool)>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no worker panicked holding a slot lock")
            })
            .collect();
        let (results, from_cache): (Vec<R>, Vec<bool>) = plan
            .rep_of
            .iter()
            .map(|&rep| {
                let (result, cached) = representatives[rep]
                    .as_ref()
                    .expect("every representative cell was claimed and completed");
                (result.clone(), *cached)
            })
            .unzip();
        let stats = PoolStats {
            total: count,
            unique: plan.unique_count(),
            executed: executed.into_inner(),
            cache_hits: cache_hits.into_inner(),
            peer: 0,
            contested: 0,
        };
        (results, from_cache, stats)
    }

    /// [`CellPool::run_flagged`] for a **federated** run: several
    /// processes share one cache dir and divide the representatives
    /// between them by claiming (see [`ReportCache::try_claim`]).
    ///
    /// Phase 1 sweeps the longest-first order on this pool's threads,
    /// starting from this process's [`ClaimStride`] offset (wrapping mod
    /// the order length, so coverage is unchanged): cached
    /// representatives hit as usual, unclaimed ones are claimed,
    /// executed, published, and released; representatives claimed by a
    /// peer are left pending (counted as `contested`). Phase 2 settles
    /// the pending ones — each is either published by its peer (a `peer`
    /// hit) or its claim goes stale/dead and this process steals and
    /// runs it, so a killed worker never wedges the run.
    ///
    /// The merged output is **byte-identical** to [`CellPool::run_flagged`]
    /// with the same cache for any process count: results come from the
    /// cache's deterministic serialization either way, and merging in
    /// logical cell order erases scheduling entirely. Per-cell flags
    /// report `true` for everything this process did not compute
    /// (cache + peer).
    // Eight closure/config inputs mirror `run_flagged` plus the two
    // federation knobs; bundling them would only obscure the call sites.
    #[allow(clippy::too_many_arguments)]
    pub fn run_federated<R>(
        &self,
        count: usize,
        fingerprint: &(dyn Fn(usize) -> String + Sync),
        cost: &(dyn Fn(usize) -> u64 + Sync),
        cache: &ReportCache,
        timing: ClaimTiming,
        stride: ClaimStride,
        run: &(dyn Fn(usize) -> R + Sync),
    ) -> (Vec<R>, Vec<bool>, PoolStats)
    where
        R: Clone + Send + Serialize + Deserialize,
    {
        let plan = RunPlan::build(count, fingerprint, cost);
        let slots: Vec<Mutex<Option<(R, bool)>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let executed = AtomicUsize::new(0);
        let cache_hits = AtomicUsize::new(0);
        let peer = AtomicUsize::new(0);
        let contested = AtomicUsize::new(0);
        let offset = stride.offset(plan.order.len());

        // Phase 1: claim-or-skip sweep over the longest-first order,
        // rotated to this process's stride offset.
        let workers = self.threads.min(plan.order.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= plan.order.len() {
                        break;
                    }
                    let i = plan.order[(offset + k) % plan.order.len()];
                    let key = &plan.keys[i];
                    if let Some(hit) = cache.lookup::<R>(key) {
                        cache_hits.fetch_add(1, Ordering::Relaxed);
                        *slots[i].lock().unwrap() = Some((hit, true));
                        continue;
                    }
                    match cache.try_claim(key, timing.stale) {
                        ClaimAttempt::Acquired(guard) => {
                            // A peer may have published between the miss
                            // and the claim; don't redo its work.
                            let result = match cache.lookup::<R>(key) {
                                Some(hit) => {
                                    peer.fetch_add(1, Ordering::Relaxed);
                                    (hit, true)
                                }
                                None => {
                                    executed.fetch_add(1, Ordering::Relaxed);
                                    let fresh = run(i);
                                    cache.store(key, &fresh);
                                    (fresh, false)
                                }
                            };
                            guard.release();
                            *slots[i].lock().unwrap() = Some(result);
                        }
                        // A live peer is on it — settle in phase 2.
                        ClaimAttempt::Held(_) => {
                            contested.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });

        // Phase 2: wait out (or steal) the representatives peers claimed.
        for &i in &plan.order {
            if slots[i].lock().unwrap().is_some() {
                continue;
            }
            let key = &plan.keys[i];
            let result = loop {
                if let Some(hit) = cache.lookup::<R>(key) {
                    peer.fetch_add(1, Ordering::Relaxed);
                    break (hit, true);
                }
                match cache.try_claim(key, timing.stale) {
                    ClaimAttempt::Acquired(guard) => {
                        let result = match cache.lookup::<R>(key) {
                            Some(hit) => {
                                peer.fetch_add(1, Ordering::Relaxed);
                                (hit, true)
                            }
                            None => {
                                executed.fetch_add(1, Ordering::Relaxed);
                                let fresh = run(i);
                                cache.store(key, &fresh);
                                (fresh, false)
                            }
                        };
                        guard.release();
                        break result;
                    }
                    ClaimAttempt::Held(_) => std::thread::sleep(timing.poll),
                }
            };
            *slots[i].lock().unwrap() = Some(result);
        }

        let representatives: Vec<Option<(R, bool)>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no worker panicked holding a slot lock")
            })
            .collect();
        let (results, from_cache): (Vec<R>, Vec<bool>) = plan
            .rep_of
            .iter()
            .map(|&rep| {
                let (result, cached) = representatives[rep]
                    .as_ref()
                    .expect("every representative cell was claimed and completed");
                (result.clone(), *cached)
            })
            .unzip();
        let stats = PoolStats {
            total: count,
            unique: plan.unique_count(),
            executed: executed.into_inner(),
            cache_hits: cache_hits.into_inner(),
            peer: peer.into_inner(),
            contested: contested.into_inner(),
        };
        (results, from_cache, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(i: usize) -> String {
        format!("cell-{i}")
    }

    #[test]
    fn stride_offsets_partition_the_order() {
        let s = |rank| ClaimStride { rank, procs: 4 };
        assert_eq!(s(0).offset(8), 0);
        assert_eq!(s(1).offset(8), 2);
        assert_eq!(s(3).offset(8), 6);
        // Out-of-fleet ranks clamp to the last stripe.
        assert_eq!(s(9).offset(8), 6);
        // Unfederated runs and empty orders never stride.
        assert_eq!(ClaimStride::default().offset(8), 0);
        assert_eq!(s(2).offset(0), 0);
    }

    #[test]
    fn results_land_in_cell_order_for_any_thread_count() {
        for threads in [1, 4, 32] {
            let (results, stats) = CellPool::new(threads).run(
                10,
                &ident,
                &|i| i as u64,
                None,
                &|i| i * i,
            );
            assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.total, 10);
            assert_eq!(stats.unique, 10);
            assert_eq!(stats.executed, 10);
            assert_eq!(stats.cache_hits, 0);
        }
    }

    #[test]
    fn duplicate_fingerprints_run_once_and_fan_out() {
        let runs = AtomicUsize::new(0);
        let (results, stats) = CellPool::new(4).run(
            6,
            &|i| format!("group-{}", i % 2),
            &|_| 1,
            None,
            &|i| {
                runs.fetch_add(1, Ordering::Relaxed);
                i % 2
            },
        );
        assert_eq!(results, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(stats.unique, 2);
        assert_eq!(stats.executed, 2);
        assert_eq!(runs.into_inner(), 2);
    }

    #[test]
    fn cache_serves_second_run_without_executing() {
        let dir = std::env::temp_dir().join(format!("eva-pool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        let run = |i: usize| (i as u64) * 10;
        let (first, s1) = CellPool::new(2).run(4, &ident, &|_| 1, Some(&cache), &run);
        assert_eq!(s1.executed, 4);
        assert_eq!(s1.cache_hits, 0);
        assert!(!s1.all_cached());
        let (second, s2) = CellPool::new(2).run(4, &ident, &|_| 1, Some(&cache), &run);
        assert_eq!(first, second);
        assert_eq!(s2.executed, 0);
        assert_eq!(s2.cache_hits, 4);
        assert!(s2.all_cached());
        assert!(s2.summary().contains("0 simulated"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flags_mark_cached_cells_and_fan_out_to_duplicates() {
        let dir = std::env::temp_dir().join(format!("eva-pool-flag-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        // Two logical cells share one fingerprint: 4 cells, 2 unique.
        let fp = |i: usize| format!("group-{}", i % 2);
        let run = |i: usize| (i % 2) as u64;
        let pool = CellPool::new(2);
        let (_, flags, _) = pool.run_flagged(4, &fp, &|_| 1, Some(&cache), &run);
        assert_eq!(flags, vec![false; 4], "cold run computes everything");
        let (_, flags, stats) = pool.run_flagged(4, &fp, &|_| 1, Some(&cache), &run);
        assert_eq!(flags, vec![true; 4], "warm duplicates inherit the hit");
        assert!(stats.all_cached());
        // Without a cache nothing can be a replay.
        let (_, flags, _) = pool.run_flagged(4, &fp, &|_| 1, None, &run);
        assert_eq!(flags, vec![false; 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_orders_longest_first_with_index_ties() {
        let plan = RunPlan::build(4, &ident, &|i| [5, 9, 5, 1][i]);
        assert_eq!(plan.order, vec![1, 0, 2, 3]);
        assert_eq!(plan.unique_count(), 4);
    }

    #[test]
    fn zero_cells_is_fine() {
        let (results, stats) = CellPool::new(4).run(0, &ident, &|_| 1, None, &|i| i);
        assert!(results.is_empty());
        assert_eq!(stats.total, 0);
        assert!(!stats.all_cached(), "no cells ≠ fully cached");
    }

    #[test]
    fn plan_memoizes_one_fingerprint_per_cell() {
        let calls = AtomicUsize::new(0);
        let plan = RunPlan::build(
            6,
            &|i| {
                calls.fetch_add(1, Ordering::Relaxed);
                format!("group-{}", i % 2)
            },
            &|_| 1,
        );
        assert_eq!(calls.into_inner(), 6, "fingerprint runs exactly once per cell");
        assert_eq!(plan.keys.len(), 6);
        assert_eq!(plan.keys[0], "group-0");
        assert_eq!(plan.keys[plan.rep_of[2]], plan.keys[2]);
    }

    const STALE: Duration = Duration::from_secs(600);
    const TIMING: ClaimTiming = ClaimTiming {
        stale: STALE,
        poll: Duration::from_millis(5),
    };

    fn fed_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eva-pool-fed-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn federated_alone_matches_plain_run_and_leaves_no_claims() {
        let dir = fed_dir("alone");
        let cache = ReportCache::new(&dir);
        let run = |i: usize| (i as u64) * 7;
        let pool = CellPool::new(2);
        let (fed, flags, stats) =
            pool.run_federated(5, &ident, &|_| 1, &cache, TIMING, ClaimStride::default(), &run);
        let (plain, _) = CellPool::new(2).run(5, &ident, &|_| 1, None, &run);
        assert_eq!(fed, plain);
        assert_eq!(flags, vec![false; 5]);
        assert_eq!(stats.executed, 5);
        assert_eq!(stats.peer, 0);
        assert!(!stats.summary().contains("from peers"));
        // No claim files survive a completed run.
        let claims = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "claim"))
            .count();
        assert_eq!(claims, 0);
        // Warm federated rerun is pure cache.
        let (warm, flags, stats) =
            pool.run_federated(5, &ident, &|_| 1, &cache, TIMING, ClaimStride::default(), &run);
        assert_eq!(warm, fed);
        assert_eq!(flags, vec![true; 5]);
        assert!(stats.all_cached());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn federated_steals_dead_holders_claim() {
        let dir = fed_dir("steal");
        let cache = ReportCache::new(&dir);
        // A claim from a pid that cannot exist wedges nothing: the run
        // steals it and computes the cell itself.
        std::fs::create_dir_all(&dir).unwrap();
        let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|_| "?".to_string());
        std::fs::write(
            cache.claim_path("cell-1"),
            format!("{{\"pid\":4294967295,\"host\":\"{host}\",\"ts_ms\":1,\"key\":\"cell-1\"}}"),
        )
        .unwrap();
        let (results, _, stats) = CellPool::new(2).run_federated(
            3,
            &ident,
            &|_| 1,
            &cache,
            TIMING,
            ClaimStride::default(),
            &|i| (i as u64) * 3,
        );
        assert_eq!(results, vec![0, 3, 6]);
        assert_eq!(stats.executed, 3);
        assert!(cache.read_claim("cell-1").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn federated_waits_for_a_live_peer_to_publish() {
        let dir = fed_dir("peer");
        let cache = ReportCache::new(&dir);
        // A live claim (our own pid, held by the test) makes the run
        // wait; "the peer" publishes from another thread and releases.
        let guard = match cache.try_claim("cell-0", STALE) {
            crate::cache::ClaimAttempt::Acquired(g) => g,
            crate::cache::ClaimAttempt::Held(_) => panic!("fresh claim held"),
        };
        let publisher = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(40));
                cache.store("cell-0", &123u64);
                guard.release();
            })
        };
        let (results, flags, stats) = CellPool::new(2).run_federated(
            1,
            &ident,
            &|_| 1,
            &cache,
            TIMING,
            ClaimStride::default(),
            &|_| -> u64 { unreachable!("the peer owns this cell") },
        );
        publisher.join().unwrap();
        assert_eq!(results, vec![123u64]);
        assert_eq!(flags, vec![true]);
        assert_eq!(stats.peer, 1);
        assert_eq!(stats.executed, 0);
        // Phase 1 found the peer's live claim once before settling.
        assert_eq!(stats.contested, 1);
        assert!(stats.summary().ends_with("1 from peers, 1 contested"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
