//! The generic parallel cell executor behind every sweep.
//!
//! [`CellPool`] is the machinery [`crate::SweepRunner`] and the
//! solver-level micro-benchmark sweeps in `eva-bench` share: given `n`
//! logical cells described by closures, it
//!
//! 1. **deduplicates** cells whose fingerprint matches (the first
//!    occurrence becomes the representative; its result fans out),
//! 2. consults the optional persistent [`ReportCache`] per
//!    representative — hits skip execution entirely,
//! 3. claims the remaining representatives **longest-first** from a
//!    shared atomic cursor across scoped worker threads, and
//! 4. merges results back **in logical cell order**, so the output — and
//!    any JSON derived from it — is byte-identical for any thread count
//!    and any cache state.
//!
//! Determinism requires the usual sweep contract: a cell's result must be
//! a pure function of its fingerprint (all randomness seeded from the
//! cell's own configuration).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::cache::ReportCache;

/// What a pool run did: logical cells, unique representatives, and how
/// many representatives were actually executed vs served from the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Logical cells requested.
    pub total: usize,
    /// Representatives after deduplication.
    pub unique: usize,
    /// Representatives actually computed this run.
    pub executed: usize,
    /// Representatives served from the persistent cache.
    pub cache_hits: usize,
}

impl PoolStats {
    /// True when every representative came from the cache (a fully warm
    /// rerun — the CI cache check asserts this).
    pub fn all_cached(&self) -> bool {
        self.unique > 0 && self.executed == 0
    }

    /// One-line human summary, e.g. `5 unique of 8 cells: 2 simulated, 3 cached`.
    pub fn summary(&self) -> String {
        format!(
            "{} unique of {} cells: {} simulated, {} cached",
            self.unique, self.total, self.executed, self.cache_hits
        )
    }
}

/// The deduplicated execution schedule of a cell set: which index
/// represents each cell, and the representative execution order
/// (longest first, index-tiebroken — fully deterministic).
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// For every cell index, the index of its representative.
    pub rep_of: Vec<usize>,
    /// Representative indices in execution order.
    pub order: Vec<usize>,
}

impl RunPlan {
    /// Builds the plan from per-cell fingerprint and cost functions.
    pub fn build(
        count: usize,
        fingerprint: &(dyn Fn(usize) -> String + Sync),
        cost: &(dyn Fn(usize) -> u64 + Sync),
    ) -> RunPlan {
        let mut first: BTreeMap<String, usize> = BTreeMap::new();
        let mut rep_of = Vec::with_capacity(count);
        for i in 0..count {
            rep_of.push(*first.entry(fingerprint(i)).or_insert(i));
        }
        let mut order: Vec<usize> = first.into_values().collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(cost(i)), i));
        RunPlan { rep_of, order }
    }

    /// Cells that actually execute after deduplication.
    pub fn unique_count(&self) -> usize {
        self.order.len()
    }
}

/// Multi-threaded, deduplicating, cache-backed executor for generic
/// cells.
#[derive(Debug, Clone, Copy)]
pub struct CellPool {
    threads: usize,
}

impl CellPool {
    /// A pool over `threads` workers; 0 selects the machine's available
    /// parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        CellPool { threads }
    }

    /// The worker count this pool resolved to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `count` cells and returns their results in cell order plus
    /// execution stats.
    ///
    /// * `fingerprint(i)` — the cell's work identity: equal fingerprints
    ///   mean byte-identical results, so only the first runs.
    /// * `cost(i)` — relative runtime estimate for longest-first claiming.
    /// * `cache` — optional persistent store consulted (and fed) per
    ///   representative, keyed by the fingerprint. The fingerprint must
    ///   therefore be **content-based** (stable across processes and
    ///   experiments), not positional.
    /// * `run(i)` — computes the cell; must be a pure function of the
    ///   fingerprint.
    pub fn run<R>(
        &self,
        count: usize,
        fingerprint: &(dyn Fn(usize) -> String + Sync),
        cost: &(dyn Fn(usize) -> u64 + Sync),
        cache: Option<&ReportCache>,
        run: &(dyn Fn(usize) -> R + Sync),
    ) -> (Vec<R>, PoolStats)
    where
        R: Clone + Send + Serialize + Deserialize,
    {
        let (results, _, stats) = self.run_flagged(count, fingerprint, cost, cache, run);
        (results, stats)
    }

    /// [`CellPool::run`], additionally reporting **per logical cell**
    /// whether its value was replayed from the persistent cache rather
    /// than computed this run (duplicates inherit their representative's
    /// flag). Timing-sensitive sweeps use this to stamp replayed rows in
    /// their artifacts, so downstream consumers can tell a stored
    /// measurement from a fresh one.
    pub fn run_flagged<R>(
        &self,
        count: usize,
        fingerprint: &(dyn Fn(usize) -> String + Sync),
        cost: &(dyn Fn(usize) -> u64 + Sync),
        cache: Option<&ReportCache>,
        run: &(dyn Fn(usize) -> R + Sync),
    ) -> (Vec<R>, Vec<bool>, PoolStats)
    where
        R: Clone + Send + Serialize + Deserialize,
    {
        let plan = RunPlan::build(count, fingerprint, cost);
        let slots: Vec<Mutex<Option<(R, bool)>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let executed = AtomicUsize::new(0);
        let cache_hits = AtomicUsize::new(0);
        let workers = self.threads.min(plan.order.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = plan.order.get(k) else {
                        break;
                    };
                    let result = match cache {
                        Some(cache) => {
                            let key = fingerprint(i);
                            match cache.lookup::<R>(&key) {
                                Some(hit) => {
                                    cache_hits.fetch_add(1, Ordering::Relaxed);
                                    (hit, true)
                                }
                                None => {
                                    executed.fetch_add(1, Ordering::Relaxed);
                                    let fresh = run(i);
                                    cache.store(&key, &fresh);
                                    (fresh, false)
                                }
                            }
                        }
                        None => {
                            executed.fetch_add(1, Ordering::Relaxed);
                            (run(i), false)
                        }
                    };
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        let representatives: Vec<Option<(R, bool)>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no worker panicked holding a slot lock")
            })
            .collect();
        let (results, from_cache): (Vec<R>, Vec<bool>) = plan
            .rep_of
            .iter()
            .map(|&rep| {
                let (result, cached) = representatives[rep]
                    .as_ref()
                    .expect("every representative cell was claimed and completed");
                (result.clone(), *cached)
            })
            .unzip();
        let stats = PoolStats {
            total: count,
            unique: plan.unique_count(),
            executed: executed.into_inner(),
            cache_hits: cache_hits.into_inner(),
        };
        (results, from_cache, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(i: usize) -> String {
        format!("cell-{i}")
    }

    #[test]
    fn results_land_in_cell_order_for_any_thread_count() {
        for threads in [1, 4, 32] {
            let (results, stats) = CellPool::new(threads).run(
                10,
                &ident,
                &|i| i as u64,
                None,
                &|i| i * i,
            );
            assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.total, 10);
            assert_eq!(stats.unique, 10);
            assert_eq!(stats.executed, 10);
            assert_eq!(stats.cache_hits, 0);
        }
    }

    #[test]
    fn duplicate_fingerprints_run_once_and_fan_out() {
        let runs = AtomicUsize::new(0);
        let (results, stats) = CellPool::new(4).run(
            6,
            &|i| format!("group-{}", i % 2),
            &|_| 1,
            None,
            &|i| {
                runs.fetch_add(1, Ordering::Relaxed);
                i % 2
            },
        );
        assert_eq!(results, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(stats.unique, 2);
        assert_eq!(stats.executed, 2);
        assert_eq!(runs.into_inner(), 2);
    }

    #[test]
    fn cache_serves_second_run_without_executing() {
        let dir = std::env::temp_dir().join(format!("eva-pool-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        let run = |i: usize| (i as u64) * 10;
        let (first, s1) = CellPool::new(2).run(4, &ident, &|_| 1, Some(&cache), &run);
        assert_eq!(s1.executed, 4);
        assert_eq!(s1.cache_hits, 0);
        assert!(!s1.all_cached());
        let (second, s2) = CellPool::new(2).run(4, &ident, &|_| 1, Some(&cache), &run);
        assert_eq!(first, second);
        assert_eq!(s2.executed, 0);
        assert_eq!(s2.cache_hits, 4);
        assert!(s2.all_cached());
        assert!(s2.summary().contains("0 simulated"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flags_mark_cached_cells_and_fan_out_to_duplicates() {
        let dir = std::env::temp_dir().join(format!("eva-pool-flag-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReportCache::new(&dir);
        // Two logical cells share one fingerprint: 4 cells, 2 unique.
        let fp = |i: usize| format!("group-{}", i % 2);
        let run = |i: usize| (i % 2) as u64;
        let pool = CellPool::new(2);
        let (_, flags, _) = pool.run_flagged(4, &fp, &|_| 1, Some(&cache), &run);
        assert_eq!(flags, vec![false; 4], "cold run computes everything");
        let (_, flags, stats) = pool.run_flagged(4, &fp, &|_| 1, Some(&cache), &run);
        assert_eq!(flags, vec![true; 4], "warm duplicates inherit the hit");
        assert!(stats.all_cached());
        // Without a cache nothing can be a replay.
        let (_, flags, _) = pool.run_flagged(4, &fp, &|_| 1, None, &run);
        assert_eq!(flags, vec![false; 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_orders_longest_first_with_index_ties() {
        let plan = RunPlan::build(4, &ident, &|i| [5, 9, 5, 1][i]);
        assert_eq!(plan.order, vec![1, 0, 2, 3]);
        assert_eq!(plan.unique_count(), 4);
    }

    #[test]
    fn zero_cells_is_fine() {
        let (results, stats) = CellPool::new(4).run(0, &ident, &|_| 1, None, &|i| i);
        assert!(results.is_empty());
        assert_eq!(stats.total, 0);
        assert!(!stats.all_cached(), "no cells ≠ fully cached");
    }
}
