//! Scheduler-facing side of the world model: observation/snapshot
//! building, plan execution, and the periodic scheduling round.
//!
//! The scheduler never sees the ground-truth interference model — only
//! the *observed* throughput of its own jobs and the co-location contexts
//! they ran in, exactly as in the paper's evaluation (§5).

use std::collections::BTreeMap;

use eva_cloud::ProvisionRequest;
use eva_core::{InstanceSnapshot, JobObservation, Plan, PlannedInstance, SchedulerContext, TaskSnapshot};
use eva_interference::TaskContext;
use eva_types::{InstanceId, SimDuration, TaskId, WorkloadKind};

use eva_types::SimTime;

use crate::arena::NO_SLOT;
use crate::script::ExecActionKind;
use crate::state::TaskState;
use crate::world::{ClusterSim, Event};

impl ClusterSim {
    pub(crate) fn instance_ready_at(&self, id: InstanceId) -> SimTime {
        self.cloud
            .instance(id)
            .map(|i| i.ready_at)
            .unwrap_or(self.now())
    }

    /// Moves (or first-places) a task onto `dest`.
    pub(crate) fn transfer_task(&mut self, tid: TaskId, dest: InstanceId) {
        let Some(tslot) = self.world.tasks.slot_of(tid) else {
            return;
        };
        let s = tslot as usize;
        let jslot = self.world.tasks.job_slot[s];
        if !self.world.jobs.arrived[jslot as usize] {
            return;
        }
        let (checkpoint, launch) = {
            let spec = self.task_spec(tslot);
            (
                spec.checkpoint_delay.scale(self.migration_delay_scale),
                spec.launch_delay.scale(self.migration_delay_scale),
            )
        };

        let was_running = self.world.tasks.is_running(tslot);
        let old = self.world.tasks.assigned[s];
        let had_instance = old != NO_SLOT;

        if had_instance && self.world.insts.ids[old as usize] == dest {
            return;
        }
        // The moved task's own job changes state (running → in transit),
        // and leaving an instance changes every co-located job's
        // interference set. Marking settles them, so the Stop progress
        // read below is current.
        self.world.jobs.mark_dirty(jslot);
        if had_instance {
            let old_id = self.world.insts.ids[old as usize];
            self.touch_instance_jobs(old);
            if self.world.insts.detach(old, tslot) {
                self.account_mapping(old_id, tslot, false);
            }
            if was_running {
                self.account_running(old_id, -1);
                let busy = self.now() + checkpoint;
                let slot_busy = &mut self.world.insts.busy_until[old as usize];
                *slot_busy = (*slot_busy).max(busy);
                if self.recorder.is_some() {
                    let progress = self.job_progress_fraction_slot(jslot);
                    self.record(ExecActionKind::Stop {
                        task: tid,
                        progress,
                    });
                }
            }
        }

        self.world.tasks.gen[s] += 1;
        let gen = self.world.tasks.gen[s];
        let depart = if was_running {
            self.now() + checkpoint
        } else {
            self.now()
        };
        let ready = depart.max(self.instance_ready_at(dest)) + launch;

        self.world.tasks.state[s] = TaskState::InTransit {
            generation: gen,
            ready_at: ready,
        };
        if had_instance {
            self.world.tasks.migrations[s] += 1;
            self.migration_count += 1;
        }
        let dslot = self.world.insts.ensure(dest);
        self.world.tasks.assigned[s] = dslot;
        if self.world.insts.attach(dslot, tslot) {
            self.account_mapping(dest, tslot, true);
        }
        self.push(
            ready,
            Event::TaskReady {
                slot: tslot,
                generation: gen,
            },
        );
    }
    /// Builds the scheduler-facing observations for the current instant.
    pub(crate) fn build_observations(&self) -> Vec<JobObservation> {
        let mut obs = Vec::new();
        for &jslot in &self.world.jobs.active {
            let spec = self.job_spec(jslot);
            let base = self.world.jobs.task_range(jslot).start;
            let mut contexts = Vec::new();
            let mut any_running = false;
            for (pos, tspec) in spec.tasks.iter().enumerate() {
                let tslot = self.world.tasks.slot_by_pos[base + pos];
                if !self.world.tasks.is_running(tslot) {
                    continue;
                }
                any_running = true;
                let inst = self.world.tasks.assigned[tslot as usize];
                let others: Vec<WorkloadKind> = if inst == NO_SLOT {
                    Vec::new()
                } else {
                    self.world.insts.tasks[inst as usize]
                        .iter()
                        .filter(|&&t| t != tslot && self.world.tasks.is_running(t))
                        .map(|&t| self.world.tasks.workload[t as usize])
                        .collect()
                };
                contexts.push(TaskContext::new(tspec.id, tspec.workload, others));
            }
            if !any_running {
                continue;
            }
            let observed = if spec.gang_coupled {
                self.job_tput(jslot)
            } else {
                // Single-task jobs report the task's own throughput.
                if spec.tasks.is_empty() {
                    0.0
                } else {
                    self.task_tput(self.world.tasks.slot_by_pos[base])
                }
            };
            obs.push(JobObservation {
                job: spec.id,
                gang_coupled: spec.gang_coupled,
                observed_tput: observed,
                contexts,
            });
        }
        obs
    }

    /// Builds the scheduler context snapshot.
    pub(crate) fn build_snapshot(&self) -> (Vec<TaskSnapshot>, Vec<InstanceSnapshot>) {
        let mut tasks = Vec::new();
        for &jslot in &self.world.jobs.active {
            let spec = self.job_spec(jslot);
            let base = self.world.jobs.task_range(jslot).start;
            let remaining =
                SimDuration::from_hours_f64(self.world.jobs.remaining_hours[jslot as usize]);
            for (pos, tspec) in spec.tasks.iter().enumerate() {
                let tslot = self.world.tasks.slot_by_pos[base + pos];
                let assigned = self.world.tasks.assigned[tslot as usize];
                tasks.push(TaskSnapshot {
                    id: tspec.id,
                    workload: tspec.workload,
                    demand: tspec.demand.clone(),
                    checkpoint_delay: tspec.checkpoint_delay.scale(self.migration_delay_scale),
                    launch_delay: tspec.launch_delay.scale(self.migration_delay_scale),
                    gang_size: spec.num_tasks() as u32,
                    gang_coupled: spec.gang_coupled,
                    assigned_to: (assigned != NO_SLOT)
                        .then(|| self.world.insts.ids[assigned as usize]),
                    remaining_hint: Some(remaining),
                });
            }
        }
        let instances: Vec<InstanceSnapshot> = self
            .cloud
            .live_instances(self.now())
            .filter(|i| !self.draining.contains(&i.id))
            .map(|i| InstanceSnapshot {
                id: i.id,
                type_id: i.type_id,
            })
            .collect();
        (tasks, instances)
    }

    /// Executes a plan: provisions new instances, transfers tasks, marks
    /// terminations.
    pub(crate) fn execute_plan(&mut self, plan: &Plan) {
        let mut target: BTreeMap<TaskId, InstanceId> = BTreeMap::new();
        for a in &plan.assignments {
            let inst = match a.instance {
                PlannedInstance::Existing(id) => id,
                PlannedInstance::New(ty) => {
                    match self.cloud.provision(
                        ProvisionRequest {
                            type_id: ty,
                            at: self.now(),
                        },
                        &mut self.rng,
                    ) {
                        Ok(id) => {
                            self.world.insts.ensure(id);
                            self.count_provision(id);
                            id
                        }
                        Err(_) => continue,
                    }
                }
            };
            for tid in &a.tasks {
                target.insert(*tid, inst);
            }
        }
        let moves: Vec<(TaskId, InstanceId)> = target
            .iter()
            .filter(|(tid, dest)| {
                self.world
                    .tasks
                    .slot_of(**tid)
                    .map(|s| {
                        let a = self.world.tasks.assigned[s as usize];
                        a == NO_SLOT || self.world.insts.ids[a as usize] != **dest
                    })
                    .unwrap_or(false)
            })
            .map(|(t, d)| (*t, *d))
            .collect();
        for (tid, dest) in moves {
            self.transfer_task(tid, dest);
        }
        for id in &plan.terminate {
            // Defensive: never drain an instance the plan also assigns to.
            let assigned_here = plan
                .assignments
                .iter()
                .any(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == *id));
            if !assigned_here {
                self.draining.insert(*id);
            }
        }
        self.try_terminations();
    }

    /// One scheduling round: observe, plan, execute, and re-arm the next
    /// round while work remains.
    pub(crate) fn handle_round(&mut self) {
        self.round_pending = false;
        self.record(ExecActionKind::Round);
        // Rounds read every active job's progress (snapshot remaining
        // hints), so this is the natural settle point: fold the segment
        // log into all active jobs and truncate it, bounding how far
        // any later settle has to replay.
        self.world.jobs.settle_active_and_reset();
        let observations = self.build_observations();
        self.scheduler.observe(&observations);
        let (tasks, instances) = self.build_snapshot();
        let ctx = SchedulerContext {
            now: self.now(),
            catalog: &self.catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = self.scheduler.plan(&ctx);
        self.rounds += 1;
        if self.rounds.is_multiple_of(50) && std::env::var_os("EVA_SIM_TRACE_STATE").is_some() {
            let live: Vec<_> = self.cloud.live_instances(self.now()).collect();
            let rate: f64 = live
                .iter()
                .filter_map(|i| self.catalog.get(i.type_id))
                .map(|t| t.hourly_cost.as_dollars())
                .sum();
            let running = self
                .world
                .tasks
                .state
                .iter()
                .filter(|s| **s == TaskState::Running)
                .count();
            let transit = self
                .world
                .tasks
                .state
                .iter()
                .filter(|s| matches!(s, TaskState::InTransit { .. }))
                .count();
            eprintln!(
                "round {:>5} t={:>7.2}h tasks r{running}/x{transit} inst {} rate ${rate:.0}/h",
                self.rounds,
                self.now().as_hours_f64(),
                live.len()
            );
        }
        if plan.full_reconfiguration {
            self.full_rounds += 1;
        }
        self.execute_plan(&plan);
        self.recompute_completions();

        if !self.world.jobs.active.is_empty() {
            self.schedule_round(self.now() + self.round_period);
        } else if self.arrivals_remaining == 0 && self.stream_drained() {
            // Final cleanup: drain everything still alive, and tombstone
            // leftover fault events — a fault outliving the workload has
            // nothing to disturb, and letting it dispatch would drag the
            // clock (and therefore the makespan) forward for nothing.
            let live: Vec<InstanceId> =
                self.cloud.live_instances(self.now()).map(|i| i.id).collect();
            self.draining.extend(live);
            self.try_terminations();
            for token in self.fault_tokens.drain(..) {
                self.engine.cancel(token);
            }
        }
    }
}
