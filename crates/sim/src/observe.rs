//! Scheduler-facing side of the world model: observation/snapshot
//! building, plan execution, and the periodic scheduling round.
//!
//! The scheduler never sees the ground-truth interference model — only
//! the *observed* throughput of its own jobs and the co-location contexts
//! they ran in, exactly as in the paper's evaluation (§5).

use std::collections::BTreeMap;

use eva_cloud::ProvisionRequest;
use eva_core::{InstanceSnapshot, JobObservation, Plan, PlannedInstance, SchedulerContext, TaskSnapshot};
use eva_interference::TaskContext;
use eva_types::{InstanceId, TaskId, WorkloadKind};

use eva_types::SimTime;

use crate::script::ExecActionKind;
use crate::state::TaskState;
use crate::world::{ClusterSim, Event};

impl ClusterSim {
    pub(crate) fn instance_ready_at(&self, id: InstanceId) -> SimTime {
        self.cloud
            .instance(id)
            .map(|i| i.ready_at)
            .unwrap_or(self.now())
    }

    /// Moves (or first-places) a task onto `dest`.
    pub(crate) fn transfer_task(&mut self, tid: TaskId, dest: InstanceId) {
        let Some(job) = self.jobs.get(&tid.job) else {
            return;
        };
        let Some(spec) = job.spec.task(tid) else {
            return;
        };
        let checkpoint = spec.checkpoint_delay.scale(self.migration_delay_scale);
        let launch = spec.launch_delay.scale(self.migration_delay_scale);

        let Some(rt) = self.tasks.get_mut(&tid) else {
            return;
        };
        let was_running = rt.is_running();
        let had_instance = rt.assigned_to.is_some();
        let old = rt.assigned_to;

        if let Some(old_id) = old {
            if old_id == dest {
                return;
            }
            if let Some(set) = self.on_instance.get_mut(&old_id) {
                set.remove(&tid);
            }
            if was_running {
                let busy = self.now() + checkpoint;
                let entry = self.busy_until.entry(old_id).or_insert(busy);
                *entry = (*entry).max(busy);
                if self.recorder.is_some() {
                    let progress = self.job_progress_fraction(tid.job);
                    self.record(ExecActionKind::Stop {
                        task: tid,
                        progress,
                    });
                }
            }
        }

        let gen = {
            let g = self.task_gen.entry(tid).or_insert(0);
            *g += 1;
            *g
        };
        let depart = if was_running {
            self.now() + checkpoint
        } else {
            self.now()
        };
        let ready = depart.max(self.instance_ready_at(dest)) + launch;

        let rt = self.tasks.get_mut(&tid).unwrap();
        rt.assigned_to = Some(dest);
        rt.state = TaskState::InTransit {
            generation: gen,
            ready_at: ready,
        };
        if had_instance {
            rt.migrations += 1;
            self.migration_count += 1;
        }
        self.on_instance.entry(dest).or_default().insert(tid);
        self.push(
            ready,
            Event::TaskReady {
                task: tid,
                generation: gen,
            },
        );
    }
    /// Builds the scheduler-facing observations for the current instant.
    pub(crate) fn build_observations(&self) -> Vec<JobObservation> {
        let mut obs = Vec::new();
        for (id, job) in &self.jobs {
            if job.is_done() {
                continue;
            }
            let mut contexts = Vec::new();
            let mut any_running = false;
            for spec in &job.spec.tasks {
                let Some(rt) = self.tasks.get(&spec.id) else {
                    continue;
                };
                if !rt.is_running() {
                    continue;
                }
                any_running = true;
                let others: Vec<WorkloadKind> = rt
                    .assigned_to
                    .and_then(|i| self.on_instance.get(&i))
                    .map(|set| {
                        set.iter()
                            .filter(|t| **t != spec.id)
                            .filter_map(|t| self.tasks.get(t))
                            .filter(|t| t.is_running())
                            .filter_map(|t| self.workload_of(t.id))
                            .collect()
                    })
                    .unwrap_or_default();
                contexts.push(TaskContext::new(spec.id, spec.workload, others));
            }
            if !any_running {
                continue;
            }
            let observed = if job.spec.gang_coupled {
                self.job_tput(job)
            } else {
                // Single-task jobs report the task's own throughput.
                job.spec
                    .tasks
                    .first()
                    .and_then(|s| {
                        self.tasks
                            .get(&s.id)
                            .map(|rt| self.task_tput(rt, s.workload))
                    })
                    .unwrap_or(0.0)
            };
            obs.push(JobObservation {
                job: *id,
                gang_coupled: job.spec.gang_coupled,
                observed_tput: observed,
                contexts,
            });
        }
        obs
    }

    /// Builds the scheduler context snapshot.
    pub(crate) fn build_snapshot(&self) -> (Vec<TaskSnapshot>, Vec<InstanceSnapshot>) {
        let mut tasks = Vec::new();
        for job in self.jobs.values() {
            if job.is_done() {
                continue;
            }
            for spec in &job.spec.tasks {
                let Some(rt) = self.tasks.get(&spec.id) else {
                    continue;
                };
                tasks.push(TaskSnapshot {
                    id: spec.id,
                    workload: spec.workload,
                    demand: spec.demand.clone(),
                    checkpoint_delay: spec.checkpoint_delay.scale(self.migration_delay_scale),
                    launch_delay: spec.launch_delay.scale(self.migration_delay_scale),
                    gang_size: job.spec.num_tasks() as u32,
                    gang_coupled: job.spec.gang_coupled,
                    assigned_to: rt.assigned_to,
                    remaining_hint: Some(job.remaining_hint()),
                });
            }
        }
        let instances: Vec<InstanceSnapshot> = self
            .cloud
            .live_instances(self.now())
            .filter(|i| !self.draining.contains(&i.id))
            .map(|i| InstanceSnapshot {
                id: i.id,
                type_id: i.type_id,
            })
            .collect();
        (tasks, instances)
    }

    /// Executes a plan: provisions new instances, transfers tasks, marks
    /// terminations.
    pub(crate) fn execute_plan(&mut self, plan: &Plan) {
        let mut target: BTreeMap<TaskId, InstanceId> = BTreeMap::new();
        for a in &plan.assignments {
            let inst = match a.instance {
                PlannedInstance::Existing(id) => id,
                PlannedInstance::New(ty) => {
                    match self.cloud.provision(
                        ProvisionRequest {
                            type_id: ty,
                            at: self.now(),
                        },
                        &mut self.rng,
                    ) {
                        Ok(id) => {
                            self.on_instance.entry(id).or_default();
                            id
                        }
                        Err(_) => continue,
                    }
                }
            };
            for tid in &a.tasks {
                target.insert(*tid, inst);
            }
        }
        let moves: Vec<(TaskId, InstanceId)> = target
            .iter()
            .filter(|(tid, dest)| {
                self.tasks
                    .get(tid)
                    .map(|rt| rt.assigned_to != Some(**dest))
                    .unwrap_or(false)
            })
            .map(|(t, d)| (*t, *d))
            .collect();
        for (tid, dest) in moves {
            self.transfer_task(tid, dest);
        }
        for id in &plan.terminate {
            // Defensive: never drain an instance the plan also assigns to.
            let assigned_here = plan
                .assignments
                .iter()
                .any(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == *id));
            if !assigned_here {
                self.draining.insert(*id);
            }
        }
        self.try_terminations();
    }

    /// One scheduling round: observe, plan, execute, and re-arm the next
    /// round while work remains.
    pub(crate) fn handle_round(&mut self) {
        self.round_pending = false;
        self.record(ExecActionKind::Round);
        let observations = self.build_observations();
        self.scheduler.observe(&observations);
        let (tasks, instances) = self.build_snapshot();
        let ctx = SchedulerContext {
            now: self.now(),
            catalog: &self.catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let plan = self.scheduler.plan(&ctx);
        self.rounds += 1;
        if self.rounds.is_multiple_of(50) && std::env::var_os("EVA_SIM_TRACE_STATE").is_some() {
            let live: Vec<_> = self.cloud.live_instances(self.now()).collect();
            let rate: f64 = live
                .iter()
                .filter_map(|i| self.catalog.get(i.type_id))
                .map(|t| t.hourly_cost.as_dollars())
                .sum();
            let running = self.tasks.values().filter(|t| t.is_running()).count();
            let transit = self
                .tasks
                .values()
                .filter(|t| matches!(t.state, TaskState::InTransit { .. }))
                .count();
            eprintln!(
                "round {:>5} t={:>7.2}h tasks r{running}/x{transit} inst {} rate ${rate:.0}/h",
                self.rounds,
                self.now().as_hours_f64(),
                live.len()
            );
        }
        if plan.full_reconfiguration {
            self.full_rounds += 1;
        }
        self.execute_plan(&plan);
        self.recompute_completions();

        let active = self.jobs.values().any(|j| !j.is_done());
        if active {
            self.schedule_round(self.now() + self.round_period);
        } else if self.arrivals_remaining == 0 {
            // Final cleanup: drain everything still alive, and tombstone
            // leftover fault events — a fault outliving the workload has
            // nothing to disturb, and letting it dispatch would drag the
            // clock (and therefore the makespan) forward for nothing.
            let live: Vec<InstanceId> =
                self.cloud.live_instances(self.now()).map(|i| i.id).collect();
            self.draining.extend(live);
            self.try_terminations();
            for token in self.fault_tokens.drain(..) {
                self.engine.cancel(token);
            }
        }
    }
}
