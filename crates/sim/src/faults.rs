//! Adversarial fault axes: deterministic fault plans for both backends.
//!
//! A [`FaultSpec`] names a *regime* and an *intensity*; compiling it with
//! a master seed yields a [`FaultPlan`] — a timestamped event schedule
//! fixed **before** the run, as a pure function of
//! `(master_seed, regime, intensity, horizon)`. Both backends consume the
//! same plan: [`crate::ClusterSim`] injects provider- and exec-side
//! events through its event heap (tombstone-cancelable once the workload
//! drains), and the live replay injects the exec-side consequences
//! through the real master's command channel. Because the schedule is
//! identical on both sides, any sim-vs-live delta under faults measures
//! control-plane robustness — not injection noise.
//!
//! Provider-side regimes: [`FaultRegime::PreemptStorm`] (spot kills),
//! [`FaultRegime::CapacityShock`] (pool caps), [`FaultRegime::PriceStep`]
//! (dynamic price multipliers). Exec-side regimes:
//! [`FaultRegime::CkptDrop`] (destroyed checkpoints),
//! [`FaultRegime::Straggler`] (slowed containers),
//! [`FaultRegime::WorkerCrash`] (killed worker agents).

use rand::Rng;

use eva_engine::RngStreams;
use eva_types::{SimDuration, SimTime};
use eva_workloads::TraceHandle;

/// RNG stream feeding fault-plan compilation (0 = world-model delays,
/// 1 = live task-program seeds).
pub const FAULT_STREAM: u64 = 2;

/// Ceiling on compiled events per plan, so extreme intensities on long
/// traces stay bounded.
pub const MAX_FAULT_EVENTS: usize = 512;

/// How long past the last arrival faults keep striking. Long-tailed jobs
/// may outlive this window; the plan deliberately concentrates adversity
/// where the cluster is busiest.
const FAULT_TAIL: SimDuration = SimDuration::from_mins(24 * 60);

/// A named class of injected adversity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultRegime {
    /// No injection: the exact historical fault-free trajectory.
    None,
    /// Spot-preemption storm: live instances are killed outright. The
    /// world model grants the paper-style preemption warning — running
    /// tasks checkpoint at the kill instant — but the blob never survives
    /// to storage on the live runtime, which must re-execute the lost
    /// segment.
    PreemptStorm,
    /// Capacity shock: the provider pool is capped at half the live
    /// count for a window; provisions fail until capacity frees up.
    CapacityShock,
    /// Dynamic price steps: every hourly rate is multiplied by a drawn
    /// factor from each step instant onward.
    PriceStep,
    /// Dropped checkpoints: a running job loses a fraction of its
    /// completed work (sim) / a stored checkpoint blob is deleted (live).
    CkptDrop,
    /// Straggler containers: one instance's tasks run at a reduced
    /// throughput factor for a window.
    Straggler,
    /// Worker crashes: all tasks on one instance are killed; unlike a
    /// preemption the instance itself survives (and keeps billing).
    WorkerCrash,
}

impl FaultRegime {
    /// Stable textual form used in cell keys, fingerprints, and the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            FaultRegime::None => "none",
            FaultRegime::PreemptStorm => "preempt-storm",
            FaultRegime::CapacityShock => "capacity-shock",
            FaultRegime::PriceStep => "price-step",
            FaultRegime::CkptDrop => "ckpt-drop",
            FaultRegime::Straggler => "straggler",
            FaultRegime::WorkerCrash => "worker-crash",
        }
    }

    /// Resolves a CLI-style regime name.
    pub fn from_name(name: &str) -> Result<FaultRegime, String> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "none" => FaultRegime::None,
            "preempt-storm" => FaultRegime::PreemptStorm,
            "capacity-shock" => FaultRegime::CapacityShock,
            "price-step" => FaultRegime::PriceStep,
            "ckpt-drop" => FaultRegime::CkptDrop,
            "straggler" => FaultRegime::Straggler,
            "worker-crash" => FaultRegime::WorkerCrash,
            other => {
                return Err(format!(
                    "unknown fault regime `{other}` ({})",
                    FaultRegime::names().join("|")
                ))
            }
        })
    }

    /// Every name [`FaultRegime::from_name`] accepts.
    pub fn names() -> &'static [&'static str] {
        &[
            "none",
            "preempt-storm",
            "capacity-shock",
            "price-step",
            "ckpt-drop",
            "straggler",
            "worker-crash",
        ]
    }

    /// Mean injected events per simulated hour at intensity 1.
    fn base_rate_per_hour(&self) -> f64 {
        match self {
            FaultRegime::None => 0.0,
            FaultRegime::PreemptStorm => 4.0,
            FaultRegime::CapacityShock => 1.0,
            FaultRegime::PriceStep => 1.0,
            FaultRegime::CkptDrop => 2.0,
            FaultRegime::Straggler => 1.0,
            FaultRegime::WorkerCrash => 2.0,
        }
    }

    /// Window length for regimes whose effect spans an interval.
    fn window(&self) -> SimDuration {
        match self {
            FaultRegime::CapacityShock => SimDuration::from_mins(30),
            FaultRegime::Straggler => SimDuration::from_mins(45),
            _ => SimDuration::ZERO,
        }
    }
}

/// A fault axis value: regime plus intensity (an event-rate multiplier,
/// 1.0 = the regime's nominal storm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The regime to inject.
    pub regime: FaultRegime,
    /// Event-rate multiplier (> 0; ignored for [`FaultRegime::None`]).
    pub intensity: f64,
}

impl FaultSpec {
    /// The fault-free axis value.
    pub fn none() -> FaultSpec {
        FaultSpec {
            regime: FaultRegime::None,
            intensity: 0.0,
        }
    }

    /// A regime at nominal intensity 1.
    pub fn new(regime: FaultRegime) -> FaultSpec {
        FaultSpec {
            regime,
            intensity: if regime == FaultRegime::None { 0.0 } else { 1.0 },
        }
    }

    /// True for the fault-free spec.
    pub fn is_none(&self) -> bool {
        self.regime == FaultRegime::None
    }

    /// Parses the CLI form `REGIME[:INTENSITY]` (e.g. `preempt-storm`,
    /// `ckpt-drop:2.5`).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (name, intensity) = match s.split_once(':') {
            None => (s, None),
            Some((name, raw)) => {
                let v: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad fault intensity `{raw}`"))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("fault intensity must be positive, got `{raw}`"));
                }
                (name, Some(v))
            }
        };
        let regime = FaultRegime::from_name(name)?;
        if regime == FaultRegime::None && intensity.is_some() {
            return Err("regime `none` takes no intensity".to_string());
        }
        let mut spec = FaultSpec::new(regime);
        if let Some(v) = intensity {
            spec.intensity = v;
        }
        Ok(spec)
    }

    /// Stable textual form folded into cell keys and cache fingerprints
    /// (`none`, `preempt-storm:1`, `ckpt-drop:2.5`, …).
    pub fn label(&self) -> String {
        if self.is_none() {
            "none".to_string()
        } else {
            format!("{}:{}", self.regime.label(), self.intensity)
        }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// What one compiled fault event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Kill one live instance (victim chosen at fire time by `draw`).
    Preempt,
    /// Cap the provider pool at half the live count until `until`.
    CapacityShock {
        /// When the shock lifts.
        until: SimTime,
    },
    /// Multiply every hourly rate by `factor` from this instant on.
    PriceStep {
        /// The drawn multiplier, in `[0.5, 2.0)`.
        factor: f64,
    },
    /// Destroy the latest checkpoint of one running job.
    CkptDrop,
    /// Slow one instance's tasks to `factor` × throughput until `until`.
    Straggler {
        /// When the straggler recovers.
        until: SimTime,
        /// Throughput multiplier in `(0, 1)`.
        factor: f64,
    },
    /// Kill every task on one instance; the instance itself survives.
    WorkerCrash,
}

/// One pre-compiled fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What it does.
    pub action: FaultAction,
    /// Pre-drawn randomness for fire-time victim selection (`draw % n`
    /// over the deterministically ordered candidate set).
    pub draw: u64,
}

/// The full timestamped fault schedule of one run, compiled before the
/// run starts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The compiled events in strictly increasing time order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Compiles the plan for a run over `trace` — the shared entry point,
    /// so the world model and the live replay derive *identical*
    /// schedules from one `(seed, spec, trace)` triple.
    pub fn for_trace(spec: FaultSpec, master_seed: u64, trace: &TraceHandle) -> FaultPlan {
        FaultPlan::compile(spec, master_seed, fault_horizon(trace))
    }

    /// Compiles `(master_seed, regime, intensity)` into a timestamped
    /// schedule over `[0, horizon)`: one event per expected-rate slot,
    /// jittered within its slot (strictly monotone), every event carrying
    /// a pre-drawn victim-selection word.
    pub fn compile(spec: FaultSpec, master_seed: u64, horizon: SimDuration) -> FaultPlan {
        let rate = spec.regime.base_rate_per_hour() * spec.intensity;
        let horizon_hours = horizon.as_hours_f64();
        if rate <= 0.0 || horizon_hours <= 0.0 {
            return FaultPlan::default();
        }
        let n = ((rate * horizon_hours).ceil() as usize).clamp(1, MAX_FAULT_EVENTS);
        let slot_hours = horizon_hours / n as f64;
        let window = spec.regime.window();
        let mut rng = RngStreams::new(master_seed).stream(FAULT_STREAM);
        let mut events = Vec::with_capacity(n);
        for k in 0..n {
            let jitter: f64 = rng.gen();
            let at = SimTime::ZERO
                + SimDuration::from_hours_f64((k as f64 + jitter) * slot_hours);
            let draw: u64 = rng.gen();
            let action = match spec.regime {
                FaultRegime::None => unreachable!("rate is zero for None"),
                FaultRegime::PreemptStorm => FaultAction::Preempt,
                FaultRegime::CapacityShock => FaultAction::CapacityShock {
                    until: at + window,
                },
                FaultRegime::PriceStep => {
                    let u: f64 = rng.gen();
                    FaultAction::PriceStep {
                        factor: 0.5 + 1.5 * u,
                    }
                }
                FaultRegime::CkptDrop => FaultAction::CkptDrop,
                FaultRegime::Straggler => FaultAction::Straggler {
                    until: at + window,
                    factor: (1.0 / (1.0 + spec.intensity)).max(0.05),
                },
                FaultRegime::WorkerCrash => FaultAction::WorkerCrash,
            };
            events.push(FaultEvent { at, action, draw });
        }
        FaultPlan { events }
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of compiled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// The window faults strike in: the trace's arrival span plus a fixed
/// tail. A pure function of the trace, so both backends agree on it.
pub fn fault_horizon(trace: &TraceHandle) -> SimDuration {
    let last_arrival = trace
        .jobs()
        .iter()
        .map(|j| j.arrival)
        .max()
        .unwrap_or(SimTime::ZERO);
    last_arrival.duration_since(SimTime::ZERO) + FAULT_TAIL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_round_trips_and_validates() {
        for name in FaultRegime::names() {
            let spec = FaultSpec::parse(name).unwrap();
            assert_eq!(spec.regime.label(), *name);
            assert_eq!(FaultSpec::parse(&spec.label()).unwrap(), spec);
        }
        let spec = FaultSpec::parse("ckpt-drop:2.5").unwrap();
        assert_eq!(spec.regime, FaultRegime::CkptDrop);
        assert_eq!(spec.intensity, 2.5);
        assert_eq!(spec.label(), "ckpt-drop:2.5");
        assert!(FaultSpec::parse("meteor-strike").is_err());
        assert!(FaultSpec::parse("straggler:-1").is_err());
        assert!(FaultSpec::parse("straggler:zero").is_err());
        assert!(FaultSpec::parse("none:2").is_err());
        assert_eq!(FaultSpec::none().label(), "none");
    }

    #[test]
    fn compiled_plans_are_deterministic_and_monotone() {
        let spec = FaultSpec::parse("preempt-storm:1.5").unwrap();
        let horizon = SimDuration::from_hours_f64(6.0);
        let a = FaultPlan::compile(spec, 42, horizon);
        let b = FaultPlan::compile(spec, 42, horizon);
        assert_eq!(a, b, "same inputs, same schedule");
        assert!(!a.is_empty());
        for w in a.events.windows(2) {
            assert!(w[0].at < w[1].at, "strictly increasing timestamps");
        }
        let other = FaultPlan::compile(spec, 43, horizon);
        assert_ne!(a, other, "different seeds diverge");
    }

    #[test]
    fn none_compiles_to_an_empty_plan() {
        let plan = FaultPlan::compile(FaultSpec::none(), 7, SimDuration::from_hours_f64(100.0));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn intensity_scales_event_count() {
        let horizon = SimDuration::from_hours_f64(10.0);
        let mild = FaultPlan::compile(FaultSpec::parse("worker-crash:0.5").unwrap(), 1, horizon);
        let harsh = FaultPlan::compile(FaultSpec::parse("worker-crash:4").unwrap(), 1, horizon);
        assert!(harsh.len() > mild.len());
        let extreme =
            FaultPlan::compile(FaultSpec::parse("worker-crash:1e9").unwrap(), 1, horizon);
        assert_eq!(extreme.len(), MAX_FAULT_EVENTS, "event count is capped");
    }

    #[test]
    fn windowed_regimes_carry_their_windows() {
        let plan = FaultPlan::compile(
            FaultSpec::parse("straggler").unwrap(),
            9,
            SimDuration::from_hours_f64(4.0),
        );
        for ev in &plan.events {
            match ev.action {
                FaultAction::Straggler { until, factor } => {
                    assert!(until > ev.at);
                    assert!(factor > 0.0 && factor < 1.0);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }
}
