//! The generic discrete-event engine every Eva subsystem runs on.
//!
//! The engine knows nothing about schedulers, clouds, or jobs — it owns a
//! monotone simulated clock, a time-ordered event queue, and deterministic
//! per-purpose RNG streams. `eva-sim`'s `ClusterSim` world model consumes
//! it to simulate a cluster; `eva-sim`'s `LiveBackend` consumes a second
//! engine to drive the real `eva-exec` master/worker runtime from the
//! same ordered event stream; experiment sweeps run many engines in
//! parallel, which stays deterministic because every source of randomness
//! is derived from the engine's master seed.
//!
//! Ordering is a total order over `(time, priority, insertion seq)`:
//! events at the same instant dispatch by ascending [`SimEvent::priority`],
//! ties broken FIFO. That makes every run a pure function of its inputs.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use eva_types::SimTime;

/// An event type usable with [`EventEngine`].
pub trait SimEvent {
    /// Same-timestamp dispatch priority — lower values dispatch first.
    fn priority(&self) -> u8 {
        0
    }
}

/// Handle to a cancelable scheduled event (see
/// [`EventEngine::schedule_cancelable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CancelToken(u64);

/// An event popped from the queue together with its due time.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event is due.
    pub at: SimTime,
    /// The event itself.
    pub event: E,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    prio: u8,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u8, u64) {
        (self.at, self.prio, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Monotone clock plus time-ordered event queue.
///
/// The clock only moves through [`EventEngine::advance_to`], which the
/// consumer calls after integrating world state up to the popped event's
/// due time ([`EventEngine::pop`] deliberately does *not* advance it, so
/// the consumer can still observe the pre-event instant).
#[derive(Debug)]
pub struct EventEngine<E> {
    events: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    /// Tombstones: sequence numbers of canceled entries. A `BinaryHeap`
    /// supports no random removal, so canceled events stay queued and are
    /// skipped (and forgotten) when their turn comes — the dslab idiom.
    canceled: HashSet<u64>,
    /// High-water mark of `events.len()` over the engine's lifetime.
    peak_len: usize,
}

impl<E: SimEvent> EventEngine<E> {
    /// An empty engine with the clock at time zero.
    pub fn new() -> Self {
        EventEngine {
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            canceled: HashSet::new(),
            peak_len: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Enqueues `event` for dispatch at `at` (which must not precede the
    /// clock).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        self.seq += 1;
        self.events.push(Reverse(Entry {
            at,
            prio: event.priority(),
            seq: self.seq,
            event,
        }));
        if self.events.len() > self.peak_len {
            self.peak_len = self.events.len();
        }
    }

    /// Like [`EventEngine::schedule`], but returns a token that can later
    /// tombstone the event via [`EventEngine::cancel`] — e.g. injected
    /// fault events outliving the workload they were meant to disturb.
    pub fn schedule_cancelable(&mut self, at: SimTime, event: E) -> CancelToken {
        self.schedule(at, event);
        CancelToken(self.seq)
    }

    /// Tombstones a cancelable event: if still queued it will be skipped
    /// (never dispatched, never advancing the clock). Canceling an
    /// already-dispatched or already-canceled event is a no-op.
    ///
    /// When tombstones outnumber live entries the queue compacts in
    /// place, so fault-heavy million-event runs never carry more dead
    /// weight than live events.
    pub fn cancel(&mut self, token: CancelToken) {
        self.canceled.insert(token.0);
        self.maybe_compact();
    }

    /// Rebuilds the heap without tombstoned entries once they exceed
    /// half the queue. Heap order is a total order over unique
    /// `(time, priority, seq)` keys, so a rebuilt heap pops in exactly
    /// the sequence the un-compacted one would have. Clearing the
    /// tombstone set also drops stale tokens of already-dispatched
    /// events, which `pop` alone would retain forever.
    fn maybe_compact(&mut self) {
        if self.canceled.len() * 2 <= self.events.len() {
            return;
        }
        let mut entries = std::mem::take(&mut self.events).into_vec();
        entries.retain(|Reverse(e)| !self.canceled.contains(&e.seq));
        self.events = BinaryHeap::from(entries);
        self.canceled.clear();
    }

    /// Removes and returns the next live event without advancing the
    /// clock, discarding tombstoned entries along the way.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        while let Some(Reverse(e)) = self.events.pop() {
            if self.canceled.remove(&e.seq) {
                continue;
            }
            return Some(Scheduled {
                at: e.at,
                event: e.event,
            });
        }
        None
    }

    /// Advances the clock monotonically to `t` (no-op when `t` is in the
    /// past — completion events re-derived at the same instant may carry
    /// an identical due time).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Number of events currently queued (tombstoned entries count until
    /// compaction or their due time passes them through
    /// [`EventEngine::pop`]; see [`EventEngine::live_len`] for the count
    /// that excludes them).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of queued events that will actually dispatch (excludes
    /// tombstoned entries). O(queue) — a diagnostic, not a hot-path
    /// accessor.
    pub fn live_len(&self) -> usize {
        self.events
            .iter()
            .filter(|Reverse(e)| !self.canceled.contains(&e.seq))
            .count()
    }

    /// True when no events remain (live or tombstoned).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events scheduled over the engine's lifetime.
    pub fn scheduled_count(&self) -> u64 {
        self.seq
    }

    /// High-water mark of the queued entry count (live + tombstoned)
    /// over the engine's lifetime — the heap-churn yardstick the perf
    /// snapshots track alongside [`EventEngine::scheduled_count`].
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

impl<E: SimEvent> Default for EventEngine<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic per-purpose RNG streams derived from one master seed.
///
/// Stream 0 is seeded with the master seed itself (so single-stream
/// consumers keep their historical trajectories); stream `i > 0` mixes the
/// index through SplitMix64 so distinct purposes never share a sequence.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master: u64,
}

/// The stream feeding cloud-delay sampling in the world model.
pub const DELAY_STREAM: u64 = 0;

impl RngStreams {
    /// Streams derived from `master`.
    pub fn new(master: u64) -> Self {
        RngStreams { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// A fresh RNG for stream `index`.
    pub fn stream(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(derive_seed(self.master, index))
    }
}

/// Seed for stream `index` under `master`: identity at index 0,
/// SplitMix64-mixed otherwise. Sweep cells do NOT pass through this —
/// their declared grid seeds feed `SimConfig::seed` verbatim.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    if index == 0 {
        return master;
    }
    // SplitMix64 finalizer over the (master, index) pair.
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Fast(u32),
        Slow(u32),
    }

    impl SimEvent for Ev {
        fn priority(&self) -> u8 {
            match self {
                Ev::Fast(_) => 0,
                Ev::Slow(_) => 1,
            }
        }
    }

    #[test]
    fn dispatch_order_is_time_then_priority_then_fifo() {
        let mut engine: EventEngine<Ev> = EventEngine::new();
        engine.schedule(SimTime::from_secs(10), Ev::Slow(1));
        engine.schedule(SimTime::from_secs(10), Ev::Fast(2));
        engine.schedule(SimTime::from_secs(5), Ev::Slow(3));
        engine.schedule(SimTime::from_secs(10), Ev::Fast(4));
        let order: Vec<Ev> = std::iter::from_fn(|| engine.pop().map(|s| s.event)).collect();
        assert_eq!(
            order,
            vec![Ev::Slow(3), Ev::Fast(2), Ev::Fast(4), Ev::Slow(1)]
        );
    }

    #[test]
    fn clock_is_monotone() {
        let mut engine: EventEngine<Ev> = EventEngine::new();
        engine.advance_to(SimTime::from_secs(30));
        assert_eq!(engine.now(), SimTime::from_secs(30));
        engine.advance_to(SimTime::from_secs(10));
        assert_eq!(engine.now(), SimTime::from_secs(30), "never rewinds");
    }

    #[test]
    fn pop_does_not_advance_clock() {
        let mut engine: EventEngine<Ev> = EventEngine::new();
        engine.schedule(SimTime::from_secs(7), Ev::Fast(0));
        let s = engine.pop().unwrap();
        assert_eq!(s.at, SimTime::from_secs(7));
        assert_eq!(engine.now(), SimTime::ZERO);
        assert!(engine.is_empty());
        assert_eq!(engine.scheduled_count(), 1);
    }

    #[test]
    fn canceled_events_are_skipped_without_advancing_time() {
        let mut engine: EventEngine<Ev> = EventEngine::new();
        engine.schedule(SimTime::from_secs(5), Ev::Fast(1));
        let doomed = engine.schedule_cancelable(SimTime::from_secs(60), Ev::Fast(2));
        engine.schedule(SimTime::from_secs(10), Ev::Fast(3));
        engine.cancel(doomed);
        let order: Vec<Ev> = std::iter::from_fn(|| {
            engine.pop().map(|s| {
                engine.advance_to(s.at);
                s.event
            })
        })
        .collect();
        assert_eq!(order, vec![Ev::Fast(1), Ev::Fast(3)]);
        // The tombstoned far-future event never moved the clock.
        assert_eq!(engine.now(), SimTime::from_secs(10));
    }

    #[test]
    fn cancel_is_idempotent_and_tolerates_dispatched_tokens() {
        let mut engine: EventEngine<Ev> = EventEngine::new();
        let t1 = engine.schedule_cancelable(SimTime::from_secs(1), Ev::Fast(1));
        let t2 = engine.schedule_cancelable(SimTime::from_secs(2), Ev::Fast(2));
        assert_eq!(engine.pop().unwrap().event, Ev::Fast(1));
        engine.cancel(t1); // already dispatched: no-op
        engine.cancel(t2);
        engine.cancel(t2); // double-cancel: no-op
        assert!(engine.pop().is_none());
    }

    #[test]
    fn live_len_excludes_tombstones_until_compaction() {
        let mut engine: EventEngine<Ev> = EventEngine::new();
        let mut tokens = Vec::new();
        for i in 0..8 {
            tokens.push(engine.schedule_cancelable(SimTime::from_secs(i), Ev::Fast(i as u32)));
        }
        // Cancel a minority: tombstones stay queued, live_len sees through.
        engine.cancel(tokens[0]);
        engine.cancel(tokens[1]);
        assert_eq!(engine.len(), 8);
        assert_eq!(engine.live_len(), 6);
        // Crossing the half-dead threshold compacts the heap in place.
        engine.cancel(tokens[2]);
        engine.cancel(tokens[3]);
        engine.cancel(tokens[4]);
        assert_eq!(engine.len(), 3, "tombstones physically removed");
        assert_eq!(engine.live_len(), 3);
        let order: Vec<Ev> = std::iter::from_fn(|| engine.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![Ev::Fast(5), Ev::Fast(6), Ev::Fast(7)]);
    }

    #[test]
    fn compaction_preserves_dispatch_order() {
        // Two engines with the same schedule; one compacts mid-stream.
        let mut plain: EventEngine<Ev> = EventEngine::new();
        let mut compacted: EventEngine<Ev> = EventEngine::new();
        let mut doomed = Vec::new();
        for i in 0..64u32 {
            let at = SimTime::from_secs((i % 7) as u64 * 10);
            let ev = if i % 2 == 0 { Ev::Fast(i) } else { Ev::Slow(i) };
            let ta = plain.schedule_cancelable(at, ev);
            let tb = compacted.schedule_cancelable(at, ev);
            if i % 3 == 0 {
                doomed.push((ta, tb));
            }
        }
        // Cancel in plain *after* popping half (tombstones ride along);
        // cancel in compacted up front (triggers in-place compaction).
        for (_, tb) in &doomed {
            compacted.cancel(*tb);
        }
        for (ta, _) in &doomed {
            plain.cancel(*ta);
        }
        let a: Vec<Ev> = std::iter::from_fn(|| plain.pop().map(|s| s.event)).collect();
        let b: Vec<Ev> = std::iter::from_fn(|| compacted.pop().map(|s| s.event)).collect();
        assert_eq!(a, b, "compaction must never change pop order");
    }

    #[test]
    fn compaction_drops_stale_dispatched_tokens() {
        let mut engine: EventEngine<Ev> = EventEngine::new();
        let t1 = engine.schedule_cancelable(SimTime::from_secs(1), Ev::Fast(1));
        assert_eq!(engine.pop().unwrap().event, Ev::Fast(1));
        // A stale cancel with an empty queue compacts immediately instead
        // of leaking the tombstone until a matching pop that never comes.
        engine.cancel(t1);
        assert_eq!(engine.len(), 0);
        assert_eq!(engine.live_len(), 0);
        engine.schedule(SimTime::from_secs(2), Ev::Fast(2));
        assert_eq!(engine.pop().unwrap().event, Ev::Fast(2));
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let streams = RngStreams::new(42);
        let a: f64 = streams.stream(1).gen();
        let b: f64 = streams.stream(1).gen();
        let c: f64 = streams.stream(2).gen();
        assert_eq!(a, b, "same stream, same sequence");
        assert_ne!(a, c, "different streams diverge");
    }

    #[test]
    fn stream_zero_is_the_master_seed() {
        // Single-stream consumers keep their historical trajectories.
        let x: f64 = RngStreams::new(7).stream(DELAY_STREAM).gen();
        let y: f64 = StdRng::seed_from_u64(7).gen();
        assert_eq!(x, y);
    }

    #[test]
    fn derived_seeds_spread() {
        let mut seen = std::collections::BTreeSet::new();
        for master in [0u64, 1, 42] {
            for idx in 0..16 {
                seen.insert(derive_seed(master, idx));
            }
        }
        assert_eq!(seen.len(), 48, "no collisions across small grids");
    }
}
