//! Error type shared across the workspace.

use std::fmt;

use crate::ids::{InstanceId, InstanceTypeId, TaskId};

/// Errors surfaced by the Eva crates.
#[derive(Debug, Clone, PartialEq)]
pub enum EvaError {
    /// A task demands more of some resource than any instance type offers.
    TaskUnschedulable {
        /// The offending task.
        task: TaskId,
        /// Human-readable explanation.
        reason: String,
    },
    /// An operation referenced an instance the cloud does not know about.
    UnknownInstance(InstanceId),
    /// An operation referenced an instance type outside the catalog.
    UnknownInstanceType(InstanceTypeId),
    /// An assignment would exceed an instance's capacity.
    CapacityExceeded {
        /// The overfull instance.
        instance: InstanceId,
        /// Human-readable explanation.
        reason: String,
    },
    /// The cloud provider rejected a provisioning request (e.g. the
    /// availability zone is out of capacity for that type).
    ProvisioningFailed {
        /// The requested type.
        instance_type: InstanceTypeId,
        /// Human-readable explanation.
        reason: String,
    },
    /// A trace or configuration file failed validation.
    InvalidInput(String),
    /// The exact solver hit its configured time limit without proving
    /// optimality (it still returns the incumbent through other channels).
    SolverTimeout {
        /// Seconds the solver ran for.
        elapsed_secs: f64,
    },
}

impl fmt::Display for EvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaError::TaskUnschedulable { task, reason } => {
                write!(f, "task {task} cannot be scheduled: {reason}")
            }
            EvaError::UnknownInstance(id) => write!(f, "unknown instance {id}"),
            EvaError::UnknownInstanceType(id) => write!(f, "unknown instance type {id}"),
            EvaError::CapacityExceeded { instance, reason } => {
                write!(f, "capacity exceeded on {instance}: {reason}")
            }
            EvaError::ProvisioningFailed {
                instance_type,
                reason,
            } => {
                write!(f, "provisioning {instance_type} failed: {reason}")
            }
            EvaError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            EvaError::SolverTimeout { elapsed_secs } => {
                write!(f, "solver timed out after {elapsed_secs:.1}s")
            }
        }
    }
}

impl std::error::Error for EvaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::JobId;

    #[test]
    fn errors_display_context() {
        let e = EvaError::TaskUnschedulable {
            task: TaskId::new(JobId(1), 0),
            reason: "demands 16 GPUs".into(),
        };
        assert!(e.to_string().contains("job-1/t0"));
        assert!(e.to_string().contains("16 GPUs"));

        let e = EvaError::SolverTimeout { elapsed_secs: 30.0 };
        assert!(e.to_string().contains("30.0s"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&EvaError::InvalidInput("x".into()));
    }
}
