//! Core domain types shared by every crate in the Eva reproduction.
//!
//! This crate deliberately contains no scheduling logic: it defines the
//! vocabulary — resources, money, simulated time, identifiers, task and job
//! specifications — that the cloud model, the scheduler, the baselines, and
//! the simulator all agree on.
//!
//! # Examples
//!
//! ```
//! use eva_types::{Cost, ResourceVector};
//!
//! let demand = ResourceVector::new(1, 4, 24 * 1024);
//! let capacity = ResourceVector::new(4, 32, 244 * 1024);
//! assert!(demand.fits_within(&capacity));
//! assert_eq!(Cost::from_dollars_per_hour(3.06).to_string(), "$3.0600/hr");
//! ```

pub mod error;
pub mod hash;
pub mod ids;
pub mod job;
pub mod money;
pub mod resources;
pub mod time;

pub use error::EvaError;
pub use hash::fnv1a64;
pub use ids::{InstanceId, InstanceTypeId, JobId, TaskId, WorkloadKind};
pub use job::{DemandSpec, JobSpec, TaskSpec};
pub use money::Cost;
pub use resources::{ResourceKind, ResourceVector};
pub use time::{SimDuration, SimTime};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, EvaError>;
