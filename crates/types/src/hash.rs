//! The workspace's stable content-hash primitive.
//!
//! Trace fingerprints (`eva_workloads::TraceHandle`) and persistent
//! cache keys (`eva_sim::cache::ReportCache`) are written to disk and
//! compared across processes, machines, and releases, so they must hash
//! through **one** shared implementation that never changes silently.
//! FNV-1a 64-bit is tiny, dependency-free, and platform-stable — an
//! identity/integrity hash, not a security boundary (key strings are
//! stored alongside their hashes and verified on read).

/// FNV-1a 64-bit over a byte string.
///
/// # Examples
///
/// ```
/// use eva_types::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"trace-a"), fnv1a64(b"trace-b"));
/// ```
pub const fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn is_order_sensitive() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
