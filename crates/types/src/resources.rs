//! Multi-dimensional resource vectors.
//!
//! Eva schedules over three resource dimensions — GPU, CPU (vCPU), and RAM —
//! matching the demand vectors `[g, c, m]` users submit in the paper (§5).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// The resource dimensions Eva schedules over (set `R` in the ILP of §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Discrete accelerator count.
    Gpu,
    /// Virtual CPU count.
    Cpu,
    /// Memory in mebibytes.
    RamMb,
}

impl ResourceKind {
    /// All resource kinds in a fixed order.
    pub const ALL: [ResourceKind; 3] = [ResourceKind::Gpu, ResourceKind::Cpu, ResourceKind::RamMb];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Gpu => write!(f, "GPU"),
            ResourceKind::Cpu => write!(f, "CPU"),
            ResourceKind::RamMb => write!(f, "RAM(MB)"),
        }
    }
}

/// A demand or capacity across the three resource dimensions.
///
/// Arithmetic is saturating on subtraction so that "remaining capacity"
/// computations never underflow; additions use plain (checked-in-debug)
/// arithmetic since real clusters never approach `u64::MAX` MB of RAM.
///
/// # Examples
///
/// ```
/// use eva_types::ResourceVector;
///
/// let cap = ResourceVector::new(4, 16, 244 * 1024);
/// let used = ResourceVector::new(2, 8, 24 * 1024);
/// let free = cap - used;
/// assert_eq!(free, ResourceVector::new(2, 8, 220 * 1024));
/// assert!(ResourceVector::new(1, 4, 10_240).fits_within(&free));
/// assert!(!ResourceVector::new(3, 1, 0).fits_within(&free));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    /// GPU count.
    pub gpu: u32,
    /// vCPU count.
    pub cpu: u32,
    /// RAM in mebibytes.
    pub ram_mb: u64,
}

impl ResourceVector {
    /// The zero vector (used for the ghost instance type of §4.1).
    pub const ZERO: ResourceVector = ResourceVector {
        gpu: 0,
        cpu: 0,
        ram_mb: 0,
    };

    /// Creates a new resource vector.
    pub const fn new(gpu: u32, cpu: u32, ram_mb: u64) -> Self {
        ResourceVector { gpu, cpu, ram_mb }
    }

    /// Convenience constructor taking RAM in whole gibibytes.
    pub const fn with_ram_gb(gpu: u32, cpu: u32, ram_gb: u64) -> Self {
        ResourceVector {
            gpu,
            cpu,
            ram_mb: ram_gb * 1024,
        }
    }

    /// Returns the component for a given resource kind.
    pub fn get(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::Gpu => u64::from(self.gpu),
            ResourceKind::Cpu => u64::from(self.cpu),
            ResourceKind::RamMb => self.ram_mb,
        }
    }

    /// True when every component of `self` is ≤ the corresponding component
    /// of `capacity` — the capacity constraint of the ILP (§4.1).
    pub fn fits_within(&self, capacity: &ResourceVector) -> bool {
        self.gpu <= capacity.gpu && self.cpu <= capacity.cpu && self.ram_mb <= capacity.ram_mb
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == ResourceVector::ZERO
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, rhs: &ResourceVector) -> ResourceVector {
        ResourceVector {
            gpu: self.gpu.saturating_sub(rhs.gpu),
            cpu: self.cpu.saturating_sub(rhs.cpu),
            ram_mb: self.ram_mb.saturating_sub(rhs.ram_mb),
        }
    }

    /// Component-wise checked addition, `None` on overflow.
    pub fn checked_add(&self, rhs: &ResourceVector) -> Option<ResourceVector> {
        Some(ResourceVector {
            gpu: self.gpu.checked_add(rhs.gpu)?,
            cpu: self.cpu.checked_add(rhs.cpu)?,
            ram_mb: self.ram_mb.checked_add(rhs.ram_mb)?,
        })
    }

    /// Component-wise maximum.
    pub fn max(&self, rhs: &ResourceVector) -> ResourceVector {
        ResourceVector {
            gpu: self.gpu.max(rhs.gpu),
            cpu: self.cpu.max(rhs.cpu),
            ram_mb: self.ram_mb.max(rhs.ram_mb),
        }
    }

    /// Scales every component by an integer factor.
    pub fn scaled(&self, factor: u32) -> ResourceVector {
        ResourceVector {
            gpu: self.gpu * factor,
            cpu: self.cpu * factor,
            ram_mb: self.ram_mb * u64::from(factor),
        }
    }

    /// Fraction of `capacity` used per dimension, skipping zero-capacity
    /// dimensions. Used for the resource-allocation metric (§6.1).
    pub fn utilization_against(&self, capacity: &ResourceVector) -> [Option<f64>; 3] {
        let frac = |used: u64, cap: u64| {
            if cap == 0 {
                None
            } else {
                Some(used as f64 / cap as f64)
            }
        };
        [
            frac(u64::from(self.gpu), u64::from(capacity.gpu)),
            frac(u64::from(self.cpu), u64::from(capacity.cpu)),
            frac(self.ram_mb, capacity.ram_mb),
        ]
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;

    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            gpu: self.gpu + rhs.gpu,
            cpu: self.cpu + rhs.cpu,
            ram_mb: self.ram_mb + rhs.ram_mb,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;

    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        self.saturating_sub(&rhs)
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, rhs: ResourceVector) {
        *self = *self - rhs;
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}g, {}c, {}MB]", self.gpu, self.cpu, self.ram_mb)
    }
}

impl std::iter::Sum for ResourceVector {
    fn sum<I: Iterator<Item = ResourceVector>>(iter: I) -> ResourceVector {
        iter.fold(ResourceVector::ZERO, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_within_is_componentwise() {
        let cap = ResourceVector::new(1, 4, 61 * 1024);
        assert!(ResourceVector::new(1, 4, 61 * 1024).fits_within(&cap));
        assert!(ResourceVector::new(0, 0, 0).fits_within(&cap));
        assert!(!ResourceVector::new(2, 1, 1).fits_within(&cap));
        assert!(!ResourceVector::new(0, 5, 1).fits_within(&cap));
        assert!(!ResourceVector::new(0, 0, 62 * 1024).fits_within(&cap));
    }

    #[test]
    fn saturating_sub_never_underflows() {
        let a = ResourceVector::new(1, 2, 3);
        let b = ResourceVector::new(5, 5, 5);
        assert_eq!(a.saturating_sub(&b), ResourceVector::ZERO);
        assert_eq!(b.saturating_sub(&a), ResourceVector::new(4, 3, 2));
    }

    #[test]
    fn add_and_sum() {
        let vs = [ResourceVector::new(1, 2, 3), ResourceVector::new(4, 5, 6)];
        let total: ResourceVector = vs.into_iter().sum();
        assert_eq!(total, ResourceVector::new(5, 7, 9));
    }

    #[test]
    fn utilization_skips_zero_capacity() {
        let cap = ResourceVector::new(0, 8, 32 * 1024);
        let used = ResourceVector::new(0, 4, 16 * 1024);
        let u = used.utilization_against(&cap);
        assert_eq!(u[0], None);
        assert_eq!(u[1], Some(0.5));
        assert_eq!(u[2], Some(0.5));
    }

    #[test]
    fn get_matches_fields() {
        let v = ResourceVector::new(2, 8, 1024);
        assert_eq!(v.get(ResourceKind::Gpu), 2);
        assert_eq!(v.get(ResourceKind::Cpu), 8);
        assert_eq!(v.get(ResourceKind::RamMb), 1024);
    }

    #[test]
    fn scaled_multiplies_all_components() {
        let v = ResourceVector::new(1, 4, 10);
        assert_eq!(v.scaled(3), ResourceVector::new(3, 12, 30));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ResourceVector::new(1, 4, 24).to_string(), "[1g, 4c, 24MB]");
    }

    #[test]
    fn max_is_componentwise() {
        let a = ResourceVector::new(1, 8, 2);
        let b = ResourceVector::new(2, 4, 3);
        assert_eq!(a.max(&b), ResourceVector::new(2, 8, 3));
    }
}
