//! Job and task specifications, as submitted by users (§5).
//!
//! A job consists of one or more tasks. Each task declares resource demands
//! — optionally different per instance family, mirroring the paper's
//! "multiple resource demand vectors" (e.g. fewer CPUs on C7i than on P3
//! because C7i cores are faster) — plus the migration delays (checkpoint and
//! launch) measured per workload in Table 7.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::{JobId, TaskId, WorkloadKind};
use crate::resources::ResourceVector;
use crate::time::{SimDuration, SimTime};

/// Per-family resource demands for one task.
///
/// `default` applies to any family without an explicit override; the paper's
/// example is a task demanding `[0, 8, 8]` on P3 but `[0, 4, 8]` on C7i.
///
/// # Examples
///
/// ```
/// use eva_types::{DemandSpec, ResourceVector};
///
/// let spec = DemandSpec::uniform(ResourceVector::new(0, 8, 8 * 1024))
///     .with_family_override("c7i", ResourceVector::new(0, 4, 8 * 1024));
/// assert_eq!(spec.for_family("p3").cpu, 8);
/// assert_eq!(spec.for_family("c7i").cpu, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandSpec {
    /// Demand used for families without an override.
    pub default: ResourceVector,
    /// Family-specific overrides keyed by family name (e.g. `"c7i"`).
    pub per_family: BTreeMap<String, ResourceVector>,
}

impl DemandSpec {
    /// A demand identical across all instance families.
    pub fn uniform(demand: ResourceVector) -> Self {
        DemandSpec {
            default: demand,
            per_family: BTreeMap::new(),
        }
    }

    /// Adds a family-specific override (builder style).
    pub fn with_family_override(mut self, family: &str, demand: ResourceVector) -> Self {
        self.per_family.insert(family.to_string(), demand);
        self
    }

    /// The demand vector to use on an instance of the given family.
    pub fn for_family(&self, family: &str) -> ResourceVector {
        self.per_family.get(family).copied().unwrap_or(self.default)
    }

    /// The component-wise maximum demand over all families; a conservative
    /// bound used by capacity sanity checks.
    pub fn max_demand(&self) -> ResourceVector {
        self.per_family
            .values()
            .fold(self.default, |acc, d| acc.max(d))
    }
}

/// Specification of a single task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// The task's identity.
    pub id: TaskId,
    /// The workload this task runs (indexes interference and delay data).
    pub workload: WorkloadKind,
    /// Resource demands, possibly per instance family.
    pub demand: DemandSpec,
    /// Delay to checkpoint the task before a migration (Table 7).
    pub checkpoint_delay: SimDuration,
    /// Delay to launch (or relaunch) the task on an instance (Table 7).
    pub launch_delay: SimDuration,
}

impl TaskSpec {
    /// Total migration delay: checkpoint on the source plus launch on the
    /// destination.
    pub fn migration_delay(&self) -> SimDuration {
        self.checkpoint_delay + self.launch_delay
    }
}

/// Specification of a submitted job.
///
/// `duration_at_full_tput` is the wall-clock time the job needs when every
/// task runs at normalized throughput 1.0. Under interference the job
/// progresses proportionally slower, so the realized JCT grows — this is
/// exactly the mechanism behind the paper's cost/JCT trade-off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The job's identity.
    pub id: JobId,
    /// Submission time.
    pub arrival: SimTime,
    /// The job's tasks (all tasks of a data-parallel job are identical in
    /// the paper's traces, but this is not assumed anywhere).
    pub tasks: Vec<TaskSpec>,
    /// Work expressed as time-at-full-throughput.
    pub duration_at_full_tput: SimDuration,
    /// Whether tasks are performance-interdependent (data-parallel pattern,
    /// §4.4): one straggler slows every sibling.
    pub gang_coupled: bool,
}

impl JobSpec {
    /// Number of tasks in the job.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// True for single-task jobs.
    pub fn is_single_task(&self) -> bool {
        self.tasks.len() == 1
    }

    /// Looks up a task spec by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_task(job: u64, index: u32) -> TaskSpec {
        TaskSpec {
            id: TaskId::new(JobId(job), index),
            workload: WorkloadKind(0),
            demand: DemandSpec::uniform(ResourceVector::new(1, 4, 24 * 1024)),
            checkpoint_delay: SimDuration::from_secs(2),
            launch_delay: SimDuration::from_secs(80),
        }
    }

    #[test]
    fn demand_spec_overrides_by_family() {
        let spec = DemandSpec::uniform(ResourceVector::new(0, 12, 40 * 1024))
            .with_family_override("c7i", ResourceVector::new(0, 6, 40 * 1024))
            .with_family_override("r7i", ResourceVector::new(0, 6, 40 * 1024));
        assert_eq!(spec.for_family("p3").cpu, 12);
        assert_eq!(spec.for_family("c7i").cpu, 6);
        assert_eq!(spec.for_family("unknown").cpu, 12);
        assert_eq!(spec.max_demand().cpu, 12);
    }

    #[test]
    fn max_demand_takes_componentwise_max() {
        let spec = DemandSpec::uniform(ResourceVector::new(1, 4, 10))
            .with_family_override("x", ResourceVector::new(0, 8, 5));
        assert_eq!(spec.max_demand(), ResourceVector::new(1, 8, 10));
    }

    #[test]
    fn migration_delay_sums_checkpoint_and_launch() {
        let t = demo_task(1, 0);
        assert_eq!(t.migration_delay(), SimDuration::from_secs(82));
    }

    #[test]
    fn job_lookup() {
        let job = JobSpec {
            id: JobId(1),
            arrival: SimTime::ZERO,
            tasks: vec![demo_task(1, 0), demo_task(1, 1)],
            duration_at_full_tput: SimDuration::from_hours(2),
            gang_coupled: true,
        };
        assert_eq!(job.num_tasks(), 2);
        assert!(!job.is_single_task());
        assert!(job.task(TaskId::new(JobId(1), 1)).is_some());
        assert!(job.task(TaskId::new(JobId(1), 2)).is_none());
    }

    #[test]
    fn job_spec_serde_round_trip() {
        let job = JobSpec {
            id: JobId(9),
            arrival: SimTime::from_secs(60),
            tasks: vec![demo_task(9, 0)],
            duration_at_full_tput: SimDuration::from_mins(30),
            gang_coupled: false,
        };
        let json = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(job, back);
    }
}
