//! Identifiers for jobs, tasks, instances, instance types, and workloads.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Identifies a task within a job (jobs consist of one or more tasks, §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId {
    /// The owning job.
    pub job: JobId,
    /// Index of this task within the job (0-based).
    pub index: u32,
}

impl TaskId {
    /// Builds a task id.
    pub const fn new(job: JobId, index: u32) -> Self {
        TaskId { job, index }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/t{}", self.job, self.index)
    }
}

/// Identifies a provisioned cloud instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i-{:06}", self.0)
    }
}

/// Identifies an instance type in the catalog (e.g. `p3.2xlarge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceTypeId(pub u32);

impl fmt::Display for InstanceTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "it-{}", self.0)
    }
}

/// Identifies a workload kind (a row of Table 7, e.g. GPT-2 fine-tuning).
///
/// The co-location throughput table is keyed by workload kind rather than
/// task id so that observations made for one task generalize to every other
/// task running the same workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkloadKind(pub u32);

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wk-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_order_by_job_then_index() {
        let a = TaskId::new(JobId(1), 2);
        let b = TaskId::new(JobId(2), 0);
        let c = TaskId::new(JobId(1), 3);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(TaskId::new(JobId(7), 1).to_string(), "job-7/t1");
        assert_eq!(InstanceId(12).to_string(), "i-000012");
        assert_eq!(InstanceTypeId(3).to_string(), "it-3");
        assert_eq!(WorkloadKind(5).to_string(), "wk-5");
    }

    #[test]
    fn ids_serialize_round_trip() {
        let t = TaskId::new(JobId(42), 3);
        let json = serde_json::to_string(&t).unwrap();
        let back: TaskId = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
