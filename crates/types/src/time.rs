//! Simulated time.
//!
//! The simulator and scheduler exchange instants (`SimTime`) and spans
//! (`SimDuration`), both integer milliseconds. Millisecond resolution is
//! fine-grained enough for the paper's delays (seconds to minutes) while
//! keeping all arithmetic exact.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

const MILLIS_PER_SEC: u64 = 1_000;
const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;

/// A span of simulated time (integer milliseconds).
///
/// # Examples
///
/// ```
/// use eva_types::SimDuration;
///
/// let round = SimDuration::from_mins(5);
/// assert_eq!(round.as_secs(), 300);
/// assert_eq!((round * 12).as_hours_f64(), 1.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MILLIS_PER_SEC)
    }

    /// Builds from fractional seconds (clamped at zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * MILLIS_PER_SEC as f64).round() as u64)
    }

    /// Builds from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * MILLIS_PER_MIN)
    }

    /// Builds from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * MILLIS_PER_HOUR)
    }

    /// Builds from fractional hours (clamped at zero).
    pub fn from_hours_f64(hours: f64) -> Self {
        if hours <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((hours * MILLIS_PER_HOUR as f64).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(&self) -> u64 {
        self.0 / MILLIS_PER_SEC
    }

    /// Fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Fractional hours.
    pub fn as_hours_f64(&self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// True for the zero span.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales by a non-negative float factor (used for the migration-delay
    /// sweeps of Figure 5, e.g. "2× delay").
    pub fn scale(&self, factor: f64) -> SimDuration {
        if factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.as_secs_f64();
        if total_secs < 60.0 {
            write!(f, "{total_secs:.1}s")
        } else if total_secs < 3600.0 {
            write!(f, "{:.1}m", total_secs / 60.0)
        } else {
            write!(f, "{:.2}h", total_secs / 3600.0)
        }
    }
}

/// An instant of simulated time, measured from the start of the experiment.
///
/// # Examples
///
/// ```
/// use eva_types::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_mins(20);
/// assert_eq!(t1.duration_since(t0), SimDuration::from_secs(1200));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The experiment epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MILLIS_PER_SEC)
    }

    /// Builds from fractional hours since the epoch.
    pub fn from_hours_f64(hours: f64) -> Self {
        SimTime::ZERO + SimDuration::from_hours_f64(hours)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours_f64(&self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Span since an earlier instant (saturating at zero).
    pub fn duration_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_millis())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_millis();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.as_millis()))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_mins(5).as_secs(), 300);
        assert_eq!(SimDuration::from_hours(2).as_hours_f64(), 2.0);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_hours_f64(0.5).as_secs(), 1800);
    }

    #[test]
    fn negative_float_inputs_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_hours_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(100);
        let later = t + SimDuration::from_secs(50);
        assert_eq!(later.duration_since(t), SimDuration::from_secs(50));
        // Saturating in both directions.
        assert_eq!(t.duration_since(later), SimDuration::ZERO);
        assert_eq!(t - SimDuration::from_secs(500), SimTime::ZERO);
    }

    #[test]
    fn scale_duration() {
        let d = SimDuration::from_secs(100);
        assert_eq!(d.scale(2.0), SimDuration::from_secs(200));
        assert_eq!(d.scale(0.5), SimDuration::from_secs(50));
        assert_eq!(d.scale(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_secs(30).to_string(), "30.0s");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5.0m");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
    }

    #[test]
    fn sum_durations() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
