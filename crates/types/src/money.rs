//! Exact money arithmetic.
//!
//! Costs are stored as integer micro-dollars so that the cost-efficiency
//! comparisons at the heart of Eva's algorithm (`RP(T) ≥ C_k`, Algorithm 1
//! line 14) are exact. Throughput-normalized quantities are inherently
//! fractional and are handled in `f64` dollars at the call site.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Micro-dollars per dollar.
const MICROS_PER_DOLLAR: u64 = 1_000_000;

/// A non-negative amount of money (or money rate, e.g. $/hr), stored as
/// integer micro-dollars.
///
/// # Examples
///
/// ```
/// use eva_types::Cost;
///
/// let p3_2xl = Cost::from_dollars_per_hour(3.06);
/// let c7i_l = Cost::from_dollars_per_hour(0.08925);
/// assert!(p3_2xl > c7i_l);
/// assert_eq!((p3_2xl + c7i_l).as_dollars(), 3.14925);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Cost(u64);

impl Cost {
    /// Zero cost (the ghost instance type of §4.1).
    pub const ZERO: Cost = Cost(0);

    /// Builds a cost from raw micro-dollars.
    pub const fn from_micros(micros: u64) -> Self {
        Cost(micros)
    }

    /// Builds a cost from a dollar amount. Negative inputs clamp to zero.
    ///
    /// The name mentions `per_hour` because instance prices are hourly
    /// rates, but the type is unit-agnostic.
    pub fn from_dollars_per_hour(dollars: f64) -> Self {
        Cost::from_dollars(dollars)
    }

    /// Builds a cost from a dollar amount. Negative inputs clamp to zero.
    pub fn from_dollars(dollars: f64) -> Self {
        if dollars <= 0.0 {
            return Cost(0);
        }
        Cost((dollars * MICROS_PER_DOLLAR as f64).round() as u64)
    }

    /// Raw micro-dollars.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Dollar amount as a float (for reporting and fractional math).
    pub fn as_dollars(&self) -> f64 {
        self.0 as f64 / MICROS_PER_DOLLAR as f64
    }

    /// Multiplies by a non-negative fraction, rounding to nearest micro.
    ///
    /// This is how throughput-normalized reservation prices (§4.3) are
    /// computed: `TNRP(τ, T) = tput × RP(τ)`.
    pub fn scale(&self, fraction: f64) -> Cost {
        Cost::from_dollars(self.as_dollars() * fraction)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_sub(rhs.0))
    }

    /// Cost accrued by running at this hourly rate for `hours`.
    pub fn for_hours(&self, hours: f64) -> Cost {
        self.scale(hours)
    }

    /// True when the amount is zero.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;

    fn sub(self, rhs: Cost) -> Cost {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Cost {
    fn sub_assign(&mut self, rhs: Cost) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cost {
    type Output = Cost;

    fn mul(self, rhs: u64) -> Cost {
        Cost(self.0 * rhs)
    }
}

impl Div<u64> for Cost {
    type Output = Cost;

    fn div(self, rhs: u64) -> Cost {
        Cost(self.0 / rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |acc, c| acc + c)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}/hr", self.as_dollars())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_dollars() {
        let c = Cost::from_dollars_per_hour(3.06);
        assert_eq!(c.as_micros(), 3_060_000);
        assert!((c.as_dollars() - 3.06).abs() < 1e-9);
    }

    #[test]
    fn negative_dollars_clamp_to_zero() {
        assert_eq!(Cost::from_dollars(-1.5), Cost::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        // 0.1 + 0.2 style float traps must not affect comparisons.
        let a = Cost::from_dollars(0.1) + Cost::from_dollars(0.2);
        let b = Cost::from_dollars(0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_applies_throughput() {
        let rp = Cost::from_dollars(12.0);
        assert_eq!(rp.scale(0.8), Cost::from_dollars(9.6));
        assert_eq!(rp.scale(0.0), Cost::ZERO);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Cost::from_dollars(1.0);
        let b = Cost::from_dollars(2.0);
        assert_eq!(a - b, Cost::ZERO);
        assert_eq!(b - a, Cost::from_dollars(1.0));
    }

    #[test]
    fn for_hours_accrues() {
        let rate = Cost::from_dollars_per_hour(2.0);
        assert_eq!(rate.for_hours(1.5), Cost::from_dollars(3.0));
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = [1.0, 2.0, 3.5].iter().map(|d| Cost::from_dollars(*d)).sum();
        assert_eq!(total, Cost::from_dollars(6.5));
    }

    #[test]
    fn display_formats_rate() {
        let shown = Cost::from_dollars(0.08925).to_string();
        assert!(
            shown == "$0.0893/hr" || shown == "$0.0892/hr",
            "got {shown}"
        );
    }
}
