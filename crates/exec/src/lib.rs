//! Live task runtime: the master–worker execution substrate (§5).
//!
//! The paper's implementation runs a master that manages cloud instances
//! and per-instance workers that launch tasks as Docker containers and
//! report throughput over gRPC. This crate reproduces that control plane
//! in-process so the scheduler can be exercised end-to-end on a laptop:
//!
//! * [`Master`] — registers workers, routes commands, aggregates
//!   throughput reports, and drives checkpoint/migrate cycles;
//! * [`Worker`] — one thread per simulated instance, executing tasks as
//!   [`Container`]s (threads standing in for Docker containers);
//! * [`EvaIterator`] — the lightweight iterator wrapper user code loops
//!   over; it meters throughput over a sliding window and implements
//!   cooperative checkpoint/stop, mirroring the paper's `EvaIterator`
//!   API; and
//! * a checkpoint store on [`eva_cloud::GlobalStorage`] standing in for
//!   the shared S3 bucket.
//!
//! Communication uses crossbeam channels in place of gRPC; the message
//! protocol (launch / checkpoint / report / finish) has the same shape.
//! Every wait on the launch/checkpoint/migrate path is a blocking channel
//! receive (workers merge commands and container exits into one event
//! channel; the master waits with [`Master::wait_task_exit`]) — there is
//! no polling loop. Launches carry an optional `run_until` iteration
//! bound so an engine (`eva_sim::LiveBackend`) can segment a task's
//! execution at exact, deterministic positions.

pub mod container;
pub mod iterator;
pub mod master;
pub mod messages;
pub mod worker;

pub use container::{decode_checkpoint, encode_checkpoint, Container, ContainerExit, TaskProgram};
pub use iterator::{EvaIterator, IteratorControl};
pub use master::{Master, TaskExitInfo, TaskHandle, TaskStatus};
pub use messages::{MasterToWorker, TaskExit, WorkerToMaster};
pub use worker::Worker;

pub use bytes;
