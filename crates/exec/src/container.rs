//! Simulated containers: tasks as threads.
//!
//! A [`Container`] stands in for the Docker container the paper launches
//! per task: it runs a user [`TaskProgram`] on its own thread, iterating
//! through an [`EvaIterator`] so the worker can meter throughput and
//! request cooperative checkpoints or stops.

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::Sender;

use eva_types::TaskId;

use crate::iterator::{EvaIterator, IteratorControl};
use crate::messages::TaskExit;

/// User task logic: one `step` per iteration plus optional state
/// serialization for checkpoints.
pub trait TaskProgram: Send + 'static {
    /// Performs one iteration of work.
    fn step(&mut self, iteration: u64);

    /// Serializes program state (the runtime stores the iteration position
    /// separately).
    fn checkpoint(&self) -> Bytes {
        Bytes::new()
    }

    /// Restores program state from a checkpoint blob.
    fn restore(&mut self, _blob: &Bytes) {}
}

/// Internal completion record delivered to the owning worker.
#[derive(Debug)]
pub struct ContainerExit {
    /// The task that exited.
    pub task: TaskId,
    /// Why it exited.
    pub exit: TaskExit,
    /// Position + program state: resumable checkpoint when checkpointed,
    /// final-state snapshot when finished.
    pub checkpoint: Option<Bytes>,
    /// Iterations completed in total (including restored position).
    pub completed: u64,
}

/// A running container.
pub struct Container {
    task: TaskId,
    control: Arc<IteratorControl>,
    handle: Option<JoinHandle<()>>,
}

/// Encodes a checkpoint: little-endian position followed by program bytes.
pub fn encode_checkpoint(position: u64, program: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + program.len());
    buf.put_u64_le(position);
    buf.extend_from_slice(program);
    buf.freeze()
}

/// Decodes a checkpoint into `(position, program bytes)`.
pub fn decode_checkpoint(blob: &Bytes) -> (u64, Bytes) {
    if blob.len() < 8 {
        return (0, Bytes::new());
    }
    let mut pos_bytes = [0u8; 8];
    pos_bytes.copy_from_slice(&blob[..8]);
    (u64::from_le_bytes(pos_bytes), blob.slice(8..))
}

impl Container {
    /// Launches a task program in a new thread.
    ///
    /// The program iterates `0..total_iterations`; if `checkpoint` is
    /// given, execution resumes from the stored position. A `run_until`
    /// bound schedules a deterministic checkpoint at that exact iteration
    /// (the engine-ordered segment boundary); without it the program runs
    /// until completion or a cooperative request.
    ///
    /// `exits` may be any channel whose element converts from
    /// [`ContainerExit`], so callers can merge exits into a wider event
    /// stream (the worker does) or receive them directly (tests do).
    pub fn launch<E: From<ContainerExit> + Send + 'static>(
        task: TaskId,
        total_iterations: u64,
        run_until: Option<u64>,
        mut program: Box<dyn TaskProgram>,
        checkpoint: Option<Bytes>,
        exits: Sender<E>,
    ) -> Self {
        let control = IteratorControl::new();
        if let Some(bound) = run_until {
            if bound < total_iterations {
                control.request_checkpoint_at(bound);
            }
        }
        let thread_control = control.clone();
        let handle = std::thread::spawn(move || {
            let position = match &checkpoint {
                Some(blob) => {
                    let (pos, state) = decode_checkpoint(blob);
                    program.restore(&state);
                    pos
                }
                None => 0,
            };
            let mut iter =
                EvaIterator::new(0..total_iterations, thread_control.clone()).resume_from(position);
            while let Some(i) = iter.next_item() {
                program.step(i);
            }
            let completed = thread_control.iterations();
            let (exit, blob) = if completed >= total_iterations {
                // The final-state snapshot lets callers audit state
                // continuity across checkpoint/restore cycles.
                (
                    TaskExit::Finished,
                    Some(encode_checkpoint(completed, &program.checkpoint())),
                )
            } else if iter.checkpoint_pending() {
                (
                    TaskExit::Checkpointed,
                    Some(encode_checkpoint(completed, &program.checkpoint())),
                )
            } else {
                (TaskExit::Stopped, None)
            };
            let _ = exits.send(E::from(ContainerExit {
                task,
                exit,
                checkpoint: blob,
                completed,
            }));
        });
        Container {
            task,
            control,
            handle: Some(handle),
        }
    }

    /// The task this container runs.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Shared control block (for metering and checkpoint requests).
    pub fn control(&self) -> &Arc<IteratorControl> {
        &self.control
    }

    /// Requests a checkpoint at the next iteration boundary.
    pub fn request_checkpoint(&self) {
        self.control.request_checkpoint();
    }

    /// Requests a cooperative stop.
    pub fn request_stop(&self) {
        self.control.request_stop();
    }

    /// Waits for the container thread to finish.
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Container {
    fn drop(&mut self) {
        self.control.request_stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use eva_types::JobId;

    struct Summer {
        total: u64,
    }

    impl TaskProgram for Summer {
        fn step(&mut self, iteration: u64) {
            self.total += iteration;
        }

        fn checkpoint(&self) -> Bytes {
            Bytes::copy_from_slice(&self.total.to_le_bytes())
        }

        fn restore(&mut self, blob: &Bytes) {
            if blob.len() == 8 {
                let mut b = [0u8; 8];
                b.copy_from_slice(blob);
                self.total = u64::from_le_bytes(b);
            }
        }
    }

    fn tid() -> TaskId {
        TaskId::new(JobId(1), 0)
    }

    #[test]
    fn container_runs_to_completion() {
        let (tx, rx) = unbounded::<ContainerExit>();
        let c = Container::launch(tid(), 100, None, Box::new(Summer { total: 0 }), None, tx);
        let exit = rx.recv().unwrap();
        c.join();
        assert_eq!(exit.exit, TaskExit::Finished);
        assert_eq!(exit.completed, 100);
        // Finished exits snapshot the final program state.
        let (pos, state) = decode_checkpoint(&exit.checkpoint.unwrap());
        assert_eq!(pos, 100);
        assert_eq!(state.len(), 8);
        let expected: u64 = (0..100).sum();
        assert_eq!(u64::from_le_bytes(state[..8].try_into().unwrap()), expected);
    }

    #[test]
    fn bounded_segment_checkpoints_at_exact_iteration() {
        let (tx, rx) = unbounded::<ContainerExit>();
        let c = Container::launch(
            tid(),
            1_000_000,
            Some(25),
            Box::new(Summer { total: 0 }),
            None,
            tx.clone(),
        );
        let exit = rx.recv().unwrap();
        c.join();
        assert_eq!(exit.exit, TaskExit::Checkpointed);
        assert_eq!(exit.completed, 25, "stops at the planned boundary");
        let blob = exit.checkpoint.unwrap();
        let (pos, state) = decode_checkpoint(&blob);
        assert_eq!(pos, 25);
        let expected: u64 = (0..25).sum();
        assert_eq!(u64::from_le_bytes(state[..8].try_into().unwrap()), expected);

        // Resume the next segment from the blob; a bound past the total
        // means run to completion.
        let c2 = Container::launch(
            tid(),
            100,
            Some(101),
            Box::new(Summer { total: 0 }),
            Some(blob),
            tx,
        );
        let exit2 = rx.recv().unwrap();
        c2.join();
        assert_eq!(exit2.exit, TaskExit::Finished);
        assert_eq!(exit2.completed, 100);
        let (_, state2) = decode_checkpoint(&exit2.checkpoint.unwrap());
        let full: u64 = (0..100).sum();
        assert_eq!(u64::from_le_bytes(state2[..8].try_into().unwrap()), full);
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let (tx, rx) = unbounded();
        // A program slow enough to interrupt mid-flight.
        struct Slow(Summer);
        impl TaskProgram for Slow {
            fn step(&mut self, i: u64) {
                std::thread::sleep(std::time::Duration::from_millis(1));
                self.0.step(i);
            }
            fn checkpoint(&self) -> Bytes {
                self.0.checkpoint()
            }
            fn restore(&mut self, blob: &Bytes) {
                self.0.restore(blob);
            }
        }
        let c = Container::launch::<ContainerExit>(
            tid(),
            10_000,
            None,
            Box::new(Slow(Summer { total: 0 })),
            None,
            tx.clone(),
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.request_checkpoint();
        let exit = rx.recv().unwrap();
        c.join();
        assert_eq!(exit.exit, TaskExit::Checkpointed);
        let blob = exit.checkpoint.unwrap();
        let (pos, _) = decode_checkpoint(&blob);
        assert_eq!(pos, exit.completed);
        assert!(pos > 0 && pos < 10_000);

        // Resume: the restored container finishes the remaining work and
        // the final sum matches an uninterrupted run.
        let (tx2, rx2) = unbounded::<ContainerExit>();
        let c2 = Container::launch(
            tid(),
            10_000,
            None,
            Box::new(Slow(Summer { total: 0 })),
            Some(blob),
            tx2,
        );
        c2.request_stop(); // Stop quickly; we only check the resume position.
        let exit2 = rx2.recv().unwrap();
        c2.join();
        assert!(exit2.completed >= pos);
    }

    #[test]
    fn stop_without_checkpoint() {
        let (tx, rx) = unbounded::<ContainerExit>();
        struct Slow;
        impl TaskProgram for Slow {
            fn step(&mut self, _: u64) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let c = Container::launch(tid(), 1_000_000, None, Box::new(Slow), None, tx);
        std::thread::sleep(std::time::Duration::from_millis(10));
        c.request_stop();
        let exit = rx.recv().unwrap();
        c.join();
        assert_eq!(exit.exit, TaskExit::Stopped);
        assert!(exit.checkpoint.is_none());
    }

    #[test]
    fn checkpoint_codec_round_trip() {
        let blob = encode_checkpoint(42, &Bytes::from_static(b"state"));
        let (pos, state) = decode_checkpoint(&blob);
        assert_eq!(pos, 42);
        assert_eq!(&state[..], b"state");
        // Truncated blobs decode safely.
        assert_eq!(
            decode_checkpoint(&Bytes::from_static(b"xx")),
            (0, Bytes::new())
        );
    }
}
