//! The master↔worker message protocol (crossbeam stand-in for gRPC).

use bytes::Bytes;

use eva_types::{InstanceId, TaskId};

/// Why a task's container exited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskExit {
    /// All work completed.
    Finished,
    /// Checkpointed on request or at its iteration bound; payload stored
    /// in global storage.
    Checkpointed,
    /// Stopped on request without a checkpoint.
    Stopped,
}

/// Commands the master sends to a worker.
#[derive(Debug, Clone)]
pub enum MasterToWorker {
    /// Launch a task, optionally resuming from a checkpoint blob.
    LaunchTask {
        /// The task to launch.
        task: TaskId,
        /// Total iterations the task must complete.
        total_iterations: u64,
        /// Exit with a checkpoint upon reaching this iteration. Bounded
        /// launches are how engine-ordered execution segments a task: the
        /// container checkpoints at exactly the planned boundary instead
        /// of being interrupted at an arbitrary real-time instant.
        run_until: Option<u64>,
        /// Checkpoint to resume from, if any.
        checkpoint: Option<Bytes>,
    },
    /// Checkpoint a running task at its next iteration boundary (it will
    /// exit with a checkpoint blob).
    CheckpointTask(TaskId),
    /// Report the throughput of all running tasks.
    ReportThroughput,
    /// Shut the worker down.
    Shutdown,
}

/// Reports a worker sends to the master.
#[derive(Debug, Clone)]
pub enum WorkerToMaster {
    /// A task started (or resumed) execution.
    TaskStarted {
        /// The worker's instance.
        instance: InstanceId,
        /// The task.
        task: TaskId,
    },
    /// Windowed throughput of one task (iterations per second).
    Throughput {
        /// The worker's instance.
        instance: InstanceId,
        /// The task.
        task: TaskId,
        /// Iterations per second over the recent window.
        iters_per_sec: f64,
        /// Total completed iterations.
        completed: u64,
    },
    /// A task's container exited.
    TaskExited {
        /// The worker's instance.
        instance: InstanceId,
        /// The task.
        task: TaskId,
        /// Exit reason.
        exit: TaskExit,
        /// Position + program state: the resumable checkpoint for
        /// `TaskExit::Checkpointed`, the final-state snapshot for
        /// `TaskExit::Finished` (used to audit state continuity across
        /// migrations), `None` for `TaskExit::Stopped`.
        checkpoint: Option<Bytes>,
        /// Completed iterations at exit.
        completed: u64,
    },
    /// The worker has shut down.
    WorkerStopped(InstanceId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_types::JobId;

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let m = MasterToWorker::LaunchTask {
            task: TaskId::new(JobId(1), 0),
            total_iterations: 100,
            run_until: Some(40),
            checkpoint: Some(Bytes::from_static(b"ckpt")),
        };
        let m2 = m.clone();
        assert!(format!("{m2:?}").contains("LaunchTask"));

        let r = WorkerToMaster::TaskExited {
            instance: InstanceId(1),
            task: TaskId::new(JobId(1), 0),
            exit: TaskExit::Checkpointed,
            checkpoint: None,
            completed: 42,
        };
        assert!(format!("{r:?}").contains("Checkpointed"));
    }
}
