//! The master: instance/worker registry, task routing, and migrations.
//!
//! The master mirrors the paper's centralized control plane: it launches a
//! worker per instance, routes task launches, polls throughput, and drives
//! the checkpoint → store → relaunch cycle of a migration with checkpoints
//! kept in the shared [`GlobalStorage`] (the S3 stand-in).
//!
//! All waiting happens as blocking channel receives with a deadline
//! ([`Master::wait_task_exit`]) — the master never spin-sleeps. Callers
//! that used to poll `drain_reports` in a sleep loop should block on
//! `wait_task_exit` instead.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use eva_cloud::GlobalStorage;
use eva_types::{EvaError, InstanceId, Result, TaskId};

use crate::messages::{MasterToWorker, TaskExit, WorkerToMaster};
use crate::worker::{ProgramFactory, Worker};

/// Tracked status of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Launched on the given instance.
    Running(InstanceId),
    /// Checkpointed and awaiting relaunch.
    Checkpointed,
    /// Finished all iterations.
    Finished,
}

/// Book-keeping entry for a submitted task.
#[derive(Debug, Clone)]
pub struct TaskHandle {
    /// Current status.
    pub status: TaskStatus,
    /// Total iterations the task runs.
    pub total_iterations: u64,
    /// Last reported completed iterations.
    pub completed: u64,
}

/// One task's exit, as observed by the master.
#[derive(Debug, Clone)]
pub struct TaskExitInfo {
    /// The task that exited.
    pub task: TaskId,
    /// The instance it exited on.
    pub instance: InstanceId,
    /// Why it exited.
    pub exit: TaskExit,
    /// Checkpoint / final-state blob, if the exit carried one.
    pub checkpoint: Option<Bytes>,
    /// Completed iterations at exit.
    pub completed: u64,
}

/// The centralized master.
pub struct Master {
    workers: HashMap<InstanceId, Worker>,
    reports_tx: Sender<WorkerToMaster>,
    reports_rx: Receiver<WorkerToMaster>,
    storage: Mutex<GlobalStorage>,
    tasks: Mutex<HashMap<TaskId, TaskHandle>>,
}

impl Default for Master {
    fn default() -> Self {
        Master::new()
    }
}

impl Master {
    /// Creates an empty master.
    pub fn new() -> Self {
        let (reports_tx, reports_rx) = unbounded();
        Master {
            workers: HashMap::new(),
            reports_tx,
            reports_rx,
            storage: Mutex::new(GlobalStorage::new()),
            tasks: Mutex::new(HashMap::new()),
        }
    }

    /// Registers an instance by spawning its worker.
    pub fn register_instance(&mut self, instance: InstanceId, factory: ProgramFactory) {
        let worker = Worker::spawn(instance, self.reports_tx.clone(), factory);
        self.workers.insert(instance, worker);
    }

    /// True when `instance` has a registered worker.
    pub fn has_instance(&self, instance: InstanceId) -> bool {
        self.workers.contains_key(&instance)
    }

    /// Number of registered workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Launches a task on an instance, running to completion.
    pub fn launch_task(
        &self,
        instance: InstanceId,
        task: TaskId,
        total_iterations: u64,
    ) -> Result<()> {
        self.launch_segment(instance, task, total_iterations, None, None)
    }

    /// Launches one execution segment of a task: start (or resume from
    /// `checkpoint`) on `instance` and run until `run_until` — the
    /// engine-planned segment boundary — or to completion when unbounded.
    pub fn launch_segment(
        &self,
        instance: InstanceId,
        task: TaskId,
        total_iterations: u64,
        run_until: Option<u64>,
        checkpoint: Option<Bytes>,
    ) -> Result<()> {
        let worker = self
            .workers
            .get(&instance)
            .ok_or(EvaError::UnknownInstance(instance))?;
        let resumed_at = checkpoint
            .as_ref()
            .map(|b| crate::container::decode_checkpoint(b).0)
            .unwrap_or(0);
        self.tasks.lock().insert(
            task,
            TaskHandle {
                status: TaskStatus::Running(instance),
                total_iterations,
                completed: resumed_at,
            },
        );
        worker.send(MasterToWorker::LaunchTask {
            task,
            total_iterations,
            run_until,
            checkpoint,
        });
        Ok(())
    }

    /// Current handle for a task.
    pub fn task_handle(&self, task: TaskId) -> Option<TaskHandle> {
        self.tasks.lock().get(&task).cloned()
    }

    /// Asks every worker for throughput reports.
    pub fn poll_throughput(&self) {
        for worker in self.workers.values() {
            worker.send(MasterToWorker::ReportThroughput);
        }
    }

    /// Blocks until `task`'s container exits, applying every other report
    /// that streams in meanwhile. Fails once `timeout` expires.
    pub fn wait_task_exit(&self, task: TaskId, timeout: Duration) -> Result<TaskExitInfo> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(EvaError::InvalidInput(format!(
                    "timed out waiting for exit of {task}"
                )));
            }
            match self.reports_rx.recv_timeout(remaining) {
                Ok(report) => {
                    self.apply_report(report.clone());
                    if let WorkerToMaster::TaskExited {
                        instance,
                        task: t,
                        exit,
                        checkpoint,
                        completed,
                    } = report
                    {
                        if t == task {
                            return Ok(TaskExitInfo {
                                task,
                                instance,
                                exit,
                                checkpoint,
                                completed,
                            });
                        }
                    }
                }
                Err(_) => {
                    return Err(EvaError::InvalidInput(format!(
                        "timed out waiting for exit of {task}"
                    )))
                }
            }
        }
    }

    /// Stashes a task's checkpoint blob in global storage (workers mount
    /// it — the shared S3 bucket of the paper).
    pub fn stash_checkpoint(&self, task: TaskId, blob: &Bytes) {
        self.storage.lock().put(&checkpoint_key(task), blob.to_vec());
    }

    /// Fetches a task's checkpoint blob from global storage.
    pub fn fetch_checkpoint(&self, task: TaskId) -> Option<Bytes> {
        self.storage
            .lock()
            .get(&checkpoint_key(task))
            .map(Bytes::copy_from_slice)
    }

    /// Deletes a task's stored checkpoint blob (fault injection: a
    /// dropped or confiscated checkpoint). The task's next launch then
    /// fetches nothing and re-executes from iteration zero. Returns true
    /// when a blob was actually removed.
    pub fn drop_checkpoint(&self, task: TaskId) -> bool {
        self.storage.lock().delete(&checkpoint_key(task))
    }

    /// Migrates a task: checkpoint on the source, stash the blob in global
    /// storage, relaunch on the destination from the checkpoint. Blocks
    /// until the relaunch is issued or `timeout` expires.
    pub fn migrate_task(&self, task: TaskId, to: InstanceId, timeout: Duration) -> Result<()> {
        let (from, total) = match self.tasks.lock().get(&task) {
            Some(TaskHandle {
                status: TaskStatus::Running(i),
                total_iterations,
                ..
            }) => (*i, *total_iterations),
            _ => {
                return Err(EvaError::InvalidInput(format!(
                    "task {task} is not running"
                )))
            }
        };
        let source = self
            .workers
            .get(&from)
            .ok_or(EvaError::UnknownInstance(from))?;
        source.send(MasterToWorker::CheckpointTask(task));

        // The checkpointed exit lands in global storage via apply_report
        // on whichever receive path observes it first — so even a
        // concurrent drain_reports cannot strand the blob.
        match self.wait_task_exit(task, timeout) {
            Ok(info) if info.exit == TaskExit::Checkpointed => {}
            Ok(info) => {
                return Err(EvaError::InvalidInput(format!(
                    "task {task} exited with {:?} instead of a checkpoint",
                    info.exit
                )))
            }
            Err(e) => {
                // A concurrent receiver may have consumed the exit; the
                // applied status + stashed blob are then the evidence.
                let checkpointed = matches!(
                    self.tasks.lock().get(&task),
                    Some(TaskHandle {
                        status: TaskStatus::Checkpointed,
                        ..
                    })
                );
                if !(checkpointed && self.fetch_checkpoint(task).is_some()) {
                    return Err(e);
                }
            }
        }

        if !self.workers.contains_key(&to) {
            return Err(EvaError::UnknownInstance(to));
        }
        let stored = self
            .fetch_checkpoint(task)
            .ok_or_else(|| EvaError::InvalidInput(format!("no stored checkpoint for {task}")))?;
        self.launch_segment(to, task, total, None, Some(stored))?;
        Ok(())
    }

    /// Processes all queued worker reports without blocking; returns them.
    pub fn drain_reports(&self) -> Vec<WorkerToMaster> {
        let mut out = Vec::new();
        while let Ok(report) = self.reports_rx.try_recv() {
            self.apply_report(report.clone());
            out.push(report);
        }
        out
    }

    /// Blocks for the next report with a deadline (a real channel wait,
    /// not a sleep loop); `None` once `timeout` expires.
    pub fn recv_report(&self, timeout: Duration) -> Option<WorkerToMaster> {
        match self.reports_rx.recv_timeout(timeout) {
            Ok(report) => {
                self.apply_report(report.clone());
                Some(report)
            }
            Err(_) => None,
        }
    }

    fn apply_report(&self, report: WorkerToMaster) {
        match report {
            WorkerToMaster::TaskExited {
                task,
                exit,
                checkpoint,
                completed,
                ..
            } => {
                // Checkpoint blobs go to global storage on whichever
                // receive path applies the exit first, so no consumer of
                // the report channel can strand one.
                if exit == TaskExit::Checkpointed {
                    if let Some(blob) = &checkpoint {
                        self.stash_checkpoint(task, blob);
                    }
                }
                let mut tasks = self.tasks.lock();
                if let Some(h) = tasks.get_mut(&task) {
                    h.completed = completed;
                    h.status = match exit {
                        TaskExit::Finished => TaskStatus::Finished,
                        TaskExit::Checkpointed => TaskStatus::Checkpointed,
                        TaskExit::Stopped => TaskStatus::Checkpointed,
                    };
                }
            }
            WorkerToMaster::Throughput {
                task, completed, ..
            } => {
                let mut tasks = self.tasks.lock();
                if let Some(h) = tasks.get_mut(&task) {
                    h.completed = completed;
                }
            }
            _ => {}
        }
    }

    /// Shuts every worker down (each shutdown is a blocking thread join
    /// behind a channel send — no polling).
    pub fn shutdown(mut self) {
        for (_, worker) in self.workers.drain() {
            worker.shutdown();
        }
    }
}

fn checkpoint_key(task: TaskId) -> String {
    format!("ckpt/{task}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::TaskProgram;
    use eva_types::JobId;

    struct Fast;
    impl TaskProgram for Fast {
        fn step(&mut self, _: u64) {}
    }

    struct Slow;
    impl TaskProgram for Slow {
        fn step(&mut self, _: u64) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn launch_runs_to_finish() {
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Fast)));
        let task = TaskId::new(JobId(1), 0);
        master.launch_task(InstanceId(0), task, 100).unwrap();
        // Block on the exit report — no drain/sleep polling.
        let info = master.wait_task_exit(task, Duration::from_secs(5)).unwrap();
        assert_eq!(info.exit, TaskExit::Finished);
        assert_eq!(info.completed, 100);
        let h = master.task_handle(task).unwrap();
        assert_eq!(h.status, TaskStatus::Finished);
        assert_eq!(h.completed, 100);
        master.shutdown();
    }

    #[test]
    fn migration_checkpoints_and_resumes() {
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Slow)));
        master.register_instance(InstanceId(1), Box::new(|_| Box::new(Slow)));
        let task = TaskId::new(JobId(2), 0);
        master.launch_task(InstanceId(0), task, 1_000_000).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        master
            .migrate_task(task, InstanceId(1), Duration::from_secs(5))
            .unwrap();
        let h = master.task_handle(task).unwrap();
        assert_eq!(h.status, TaskStatus::Running(InstanceId(1)));
        assert!(h.completed > 0);
        assert!(master.fetch_checkpoint(task).is_some());
        master.shutdown();
    }

    #[test]
    fn bounded_segments_relay_deterministically() {
        // Segment a task into engine-planned [0,40) and [40,100) ranges:
        // the checkpointed position is exact, so so is the resumed run.
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Fast)));
        master.register_instance(InstanceId(1), Box::new(|_| Box::new(Fast)));
        let task = TaskId::new(JobId(3), 0);
        master
            .launch_segment(InstanceId(0), task, 100, Some(40), None)
            .unwrap();
        let info = master.wait_task_exit(task, Duration::from_secs(5)).unwrap();
        assert_eq!(info.exit, TaskExit::Checkpointed);
        assert_eq!(info.completed, 40);
        master.stash_checkpoint(task, info.checkpoint.as_ref().unwrap());
        master
            .launch_segment(InstanceId(1), task, 100, None, master.fetch_checkpoint(task))
            .unwrap();
        let done = master.wait_task_exit(task, Duration::from_secs(5)).unwrap();
        assert_eq!(done.exit, TaskExit::Finished);
        assert_eq!(done.completed, 100);
        master.shutdown();
    }

    #[test]
    fn dropped_checkpoint_forces_rerun_from_zero() {
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Fast)));
        let task = TaskId::new(JobId(7), 0);
        master
            .launch_segment(InstanceId(0), task, 100, Some(60), None)
            .unwrap();
        let info = master.wait_task_exit(task, Duration::from_secs(5)).unwrap();
        assert_eq!(info.exit, TaskExit::Checkpointed);
        assert!(master.fetch_checkpoint(task).is_some());
        assert!(master.drop_checkpoint(task));
        assert!(!master.drop_checkpoint(task), "second drop finds nothing");
        assert!(master.fetch_checkpoint(task).is_none());
        // Resume without a blob: the container restarts from zero and
        // must re-execute everything.
        master
            .launch_segment(InstanceId(0), task, 100, None, master.fetch_checkpoint(task))
            .unwrap();
        let done = master.wait_task_exit(task, Duration::from_secs(5)).unwrap();
        assert_eq!(done.exit, TaskExit::Finished);
        assert_eq!(done.completed, 100);
        master.shutdown();
    }

    #[test]
    fn launching_on_unknown_instance_fails() {
        let master = Master::new();
        let err = master
            .launch_task(InstanceId(9), TaskId::new(JobId(1), 0), 10)
            .unwrap_err();
        assert!(matches!(err, EvaError::UnknownInstance(_)));
    }

    #[test]
    fn migrating_idle_task_fails() {
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Fast)));
        let err = master
            .migrate_task(
                TaskId::new(JobId(5), 0),
                InstanceId(0),
                Duration::from_secs(1),
            )
            .unwrap_err();
        assert!(matches!(err, EvaError::InvalidInput(_)));
        master.shutdown();
    }
}
