//! The master: instance/worker registry, task routing, and migrations.
//!
//! The master mirrors the paper's centralized control plane: it launches a
//! worker per instance, routes task launches, polls throughput, and drives
//! the checkpoint → store → relaunch cycle of a migration with checkpoints
//! kept in the shared [`GlobalStorage`] (the S3 stand-in).

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use eva_cloud::GlobalStorage;
use eva_types::{EvaError, InstanceId, Result, TaskId};

use crate::messages::{MasterToWorker, TaskExit, WorkerToMaster};
use crate::worker::{ProgramFactory, Worker};

/// Tracked status of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Launched on the given instance.
    Running(InstanceId),
    /// Checkpointed and awaiting relaunch.
    Checkpointed,
    /// Finished all iterations.
    Finished,
}

/// Book-keeping entry for a submitted task.
#[derive(Debug, Clone)]
pub struct TaskHandle {
    /// Current status.
    pub status: TaskStatus,
    /// Total iterations the task runs.
    pub total_iterations: u64,
    /// Last reported completed iterations.
    pub completed: u64,
}

/// The centralized master.
pub struct Master {
    workers: HashMap<InstanceId, Worker>,
    reports_tx: Sender<WorkerToMaster>,
    reports_rx: Receiver<WorkerToMaster>,
    storage: Mutex<GlobalStorage>,
    tasks: Mutex<HashMap<TaskId, TaskHandle>>,
}

impl Default for Master {
    fn default() -> Self {
        Master::new()
    }
}

impl Master {
    /// Creates an empty master.
    pub fn new() -> Self {
        let (reports_tx, reports_rx) = unbounded();
        Master {
            workers: HashMap::new(),
            reports_tx,
            reports_rx,
            storage: Mutex::new(GlobalStorage::new()),
            tasks: Mutex::new(HashMap::new()),
        }
    }

    /// Registers an instance by spawning its worker.
    pub fn register_instance(&mut self, instance: InstanceId, factory: ProgramFactory) {
        let worker = Worker::spawn(instance, self.reports_tx.clone(), factory);
        self.workers.insert(instance, worker);
    }

    /// Number of registered workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Launches a task on an instance.
    pub fn launch_task(
        &self,
        instance: InstanceId,
        task: TaskId,
        total_iterations: u64,
    ) -> Result<()> {
        let worker = self
            .workers
            .get(&instance)
            .ok_or(EvaError::UnknownInstance(instance))?;
        self.tasks.lock().insert(
            task,
            TaskHandle {
                status: TaskStatus::Running(instance),
                total_iterations,
                completed: 0,
            },
        );
        worker.send(MasterToWorker::LaunchTask {
            task,
            total_iterations,
            checkpoint: None,
        });
        Ok(())
    }

    /// Current handle for a task.
    pub fn task_handle(&self, task: TaskId) -> Option<TaskHandle> {
        self.tasks.lock().get(&task).cloned()
    }

    /// Asks every worker for throughput reports.
    pub fn poll_throughput(&self) {
        for worker in self.workers.values() {
            worker.send(MasterToWorker::ReportThroughput);
        }
    }

    /// Migrates a task: checkpoint on the source, stash the blob in global
    /// storage, relaunch on the destination from the checkpoint. Blocks
    /// until the relaunch is issued or `timeout` expires.
    pub fn migrate_task(&self, task: TaskId, to: InstanceId, timeout: Duration) -> Result<()> {
        let from = match self.tasks.lock().get(&task) {
            Some(TaskHandle {
                status: TaskStatus::Running(i),
                ..
            }) => *i,
            _ => {
                return Err(EvaError::InvalidInput(format!(
                    "task {task} is not running"
                )))
            }
        };
        let source = self
            .workers
            .get(&from)
            .ok_or(EvaError::UnknownInstance(from))?;
        source.send(MasterToWorker::CheckpointTask(task));

        // Wait for the checkpointed exit, processing other reports as they
        // stream in.
        let deadline = std::time::Instant::now() + timeout;
        let blob: Bytes = loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(EvaError::InvalidInput(format!(
                    "timed out waiting for checkpoint of {task}"
                )));
            }
            match self.reports_rx.recv_timeout(remaining) {
                Ok(report) => {
                    if let WorkerToMaster::TaskExited {
                        task: t,
                        exit: TaskExit::Checkpointed,
                        checkpoint: Some(blob),
                        completed,
                        ..
                    } = &report
                    {
                        if *t == task {
                            let blob = blob.clone();
                            let completed = *completed;
                            let mut tasks = self.tasks.lock();
                            if let Some(h) = tasks.get_mut(&task) {
                                h.status = TaskStatus::Checkpointed;
                                h.completed = completed;
                            }
                            break blob;
                        }
                    }
                    self.apply_report(report);
                }
                Err(_) => {
                    return Err(EvaError::InvalidInput(format!(
                        "timed out waiting for checkpoint of {task}"
                    )))
                }
            }
        };

        // Store the checkpoint in global storage (workers mount it).
        let key = format!("ckpt/{task}");
        self.storage.lock().put(&key, blob.to_vec());

        let dest = self.workers.get(&to).ok_or(EvaError::UnknownInstance(to))?;
        let total = self
            .tasks
            .lock()
            .get(&task)
            .map(|h| h.total_iterations)
            .unwrap_or(0);
        let stored = self
            .storage
            .lock()
            .get(&key)
            .map(Bytes::copy_from_slice)
            .unwrap_or_default();
        dest.send(MasterToWorker::LaunchTask {
            task,
            total_iterations: total,
            checkpoint: Some(stored),
        });
        if let Some(h) = self.tasks.lock().get_mut(&task) {
            h.status = TaskStatus::Running(to);
        }
        Ok(())
    }

    /// Processes all queued worker reports without blocking; returns them.
    pub fn drain_reports(&self) -> Vec<WorkerToMaster> {
        let mut out = Vec::new();
        while let Ok(report) = self.reports_rx.try_recv() {
            self.apply_report(report.clone());
            out.push(report);
        }
        out
    }

    /// Blocks for the next report (test/demo helper).
    pub fn recv_report(&self, timeout: Duration) -> Option<WorkerToMaster> {
        match self.reports_rx.recv_timeout(timeout) {
            Ok(report) => {
                self.apply_report(report.clone());
                Some(report)
            }
            Err(_) => None,
        }
    }

    fn apply_report(&self, report: WorkerToMaster) {
        match report {
            WorkerToMaster::TaskExited {
                task,
                exit,
                completed,
                ..
            } => {
                let mut tasks = self.tasks.lock();
                if let Some(h) = tasks.get_mut(&task) {
                    h.completed = completed;
                    h.status = match exit {
                        TaskExit::Finished => TaskStatus::Finished,
                        TaskExit::Checkpointed => TaskStatus::Checkpointed,
                        TaskExit::Stopped => TaskStatus::Checkpointed,
                    };
                }
            }
            WorkerToMaster::Throughput {
                task, completed, ..
            } => {
                let mut tasks = self.tasks.lock();
                if let Some(h) = tasks.get_mut(&task) {
                    h.completed = completed;
                }
            }
            _ => {}
        }
    }

    /// Shuts every worker down.
    pub fn shutdown(mut self) {
        for (_, worker) in self.workers.drain() {
            worker.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::TaskProgram;
    use eva_types::JobId;

    struct Fast;
    impl TaskProgram for Fast {
        fn step(&mut self, _: u64) {}
    }

    struct Slow;
    impl TaskProgram for Slow {
        fn step(&mut self, _: u64) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn launch_runs_to_finish() {
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Fast)));
        let task = TaskId::new(JobId(1), 0);
        master.launch_task(InstanceId(0), task, 100).unwrap();
        // Wait for the exit report.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while std::time::Instant::now() < deadline {
            master.drain_reports();
            if master.task_handle(task).unwrap().status == TaskStatus::Finished {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let h = master.task_handle(task).unwrap();
        assert_eq!(h.status, TaskStatus::Finished);
        assert_eq!(h.completed, 100);
        master.shutdown();
    }

    #[test]
    fn migration_checkpoints_and_resumes() {
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Slow)));
        master.register_instance(InstanceId(1), Box::new(|_| Box::new(Slow)));
        let task = TaskId::new(JobId(2), 0);
        master.launch_task(InstanceId(0), task, 1_000_000).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        master
            .migrate_task(task, InstanceId(1), Duration::from_secs(5))
            .unwrap();
        let h = master.task_handle(task).unwrap();
        assert_eq!(h.status, TaskStatus::Running(InstanceId(1)));
        assert!(h.completed > 0);
        master.shutdown();
    }

    #[test]
    fn launching_on_unknown_instance_fails() {
        let master = Master::new();
        let err = master
            .launch_task(InstanceId(9), TaskId::new(JobId(1), 0), 10)
            .unwrap_err();
        assert!(matches!(err, EvaError::UnknownInstance(_)));
    }

    #[test]
    fn migrating_idle_task_fails() {
        let mut master = Master::new();
        master.register_instance(InstanceId(0), Box::new(|_| Box::new(Fast)));
        let err = master
            .migrate_task(
                TaskId::new(JobId(5), 0),
                InstanceId(0),
                Duration::from_secs(1),
            )
            .unwrap_err();
        assert!(matches!(err, EvaError::InvalidInput(_)));
        master.shutdown();
    }
}
