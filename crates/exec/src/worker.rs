//! Per-instance worker agents.
//!
//! One worker runs per cloud instance (the paper launches it during
//! instance setup). It receives commands from the master, manages the
//! instance's containers, and streams throughput reports back.
//!
//! The worker thread blocks on **one** merged event channel carrying both
//! master commands and container exits, so it parks on a genuine channel
//! wait between events — there is no polling loop anywhere on the
//! launch/checkpoint/migrate path.

use std::collections::HashMap;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use eva_types::{InstanceId, TaskId};

use crate::container::{Container, ContainerExit, TaskProgram};
use crate::messages::{MasterToWorker, WorkerToMaster};

/// Factory producing the program a task runs (the stand-in for pulling
/// the task's Docker image).
pub type ProgramFactory = Box<dyn Fn(TaskId) -> Box<dyn TaskProgram> + Send>;

/// Everything a worker thread reacts to: a command from the master or an
/// exit record from one of its own containers, merged into one channel so
/// the worker blocks on a single `recv`.
enum WorkerEvent {
    Command(MasterToWorker),
    Exit(ContainerExit),
}

impl From<ContainerExit> for WorkerEvent {
    fn from(exit: ContainerExit) -> Self {
        WorkerEvent::Exit(exit)
    }
}

/// A worker agent bound to one instance.
pub struct Worker {
    instance: InstanceId,
    events: Sender<WorkerEvent>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    /// Spawns a worker thread for `instance`, reporting to `reports`.
    pub fn spawn(
        instance: InstanceId,
        reports: Sender<WorkerToMaster>,
        factory: ProgramFactory,
    ) -> Self {
        let (event_tx, event_rx) = unbounded::<WorkerEvent>();
        let exit_tx = event_tx.clone();
        let handle = std::thread::spawn(move || {
            worker_loop(instance, event_rx, exit_tx, reports, factory);
        });
        Worker {
            instance,
            events: event_tx,
            handle: Some(handle),
        }
    }

    /// The instance this worker serves.
    pub fn instance(&self) -> InstanceId {
        self.instance
    }

    /// Sends a command to the worker.
    pub fn send(&self, cmd: MasterToWorker) {
        let _ = self.events.send(WorkerEvent::Command(cmd));
    }

    /// Requests shutdown and waits for the worker thread.
    pub fn shutdown(mut self) {
        let _ = self.events.send(WorkerEvent::Command(MasterToWorker::Shutdown));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.events.send(WorkerEvent::Command(MasterToWorker::Shutdown));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    instance: InstanceId,
    events: Receiver<WorkerEvent>,
    exit_tx: Sender<WorkerEvent>,
    reports: Sender<WorkerToMaster>,
    factory: ProgramFactory,
) {
    let mut containers: HashMap<TaskId, Container> = HashMap::new();
    loop {
        // The worker owns a sender clone (for container exits), so recv
        // only errors if the process is tearing the channel down.
        let Ok(event) = events.recv() else {
            return;
        };
        match event {
            WorkerEvent::Command(MasterToWorker::LaunchTask {
                task,
                total_iterations,
                run_until,
                checkpoint,
            }) => {
                let program = factory(task);
                let container = Container::launch(
                    task,
                    total_iterations,
                    run_until,
                    program,
                    checkpoint,
                    exit_tx.clone(),
                );
                containers.insert(task, container);
                let _ = reports.send(WorkerToMaster::TaskStarted { instance, task });
            }
            WorkerEvent::Command(MasterToWorker::CheckpointTask(task)) => {
                if let Some(c) = containers.get(&task) {
                    c.request_checkpoint();
                }
            }
            WorkerEvent::Command(MasterToWorker::ReportThroughput) => {
                for (task, c) in &containers {
                    let _ = reports.send(WorkerToMaster::Throughput {
                        instance,
                        task: *task,
                        // Window metering lives in the iterator;
                        // completed count is the robust signal the
                        // master aggregates here.
                        iters_per_sec: 0.0,
                        completed: c.control().iterations(),
                    });
                }
            }
            WorkerEvent::Command(MasterToWorker::Shutdown) => {
                for (_, c) in containers.drain() {
                    c.request_stop();
                    c.join();
                }
                // Joined containers have already queued their exits;
                // forward them before announcing the stop.
                while let Ok(event) = events.try_recv() {
                    if let WorkerEvent::Exit(exit) = event {
                        let _ = reports.send(WorkerToMaster::TaskExited {
                            instance,
                            task: exit.task,
                            exit: exit.exit,
                            checkpoint: exit.checkpoint,
                            completed: exit.completed,
                        });
                    }
                }
                let _ = reports.send(WorkerToMaster::WorkerStopped(instance));
                return;
            }
            WorkerEvent::Exit(exit) => {
                if let Some(c) = containers.remove(&exit.task) {
                    c.join();
                }
                let _ = reports.send(WorkerToMaster::TaskExited {
                    instance,
                    task: exit.task,
                    exit: exit.exit,
                    checkpoint: exit.checkpoint,
                    completed: exit.completed,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::TaskExit;
    use eva_types::JobId;

    struct Noop;
    impl TaskProgram for Noop {
        fn step(&mut self, _: u64) {}
    }

    fn factory() -> ProgramFactory {
        Box::new(|_| Box::new(Noop))
    }

    #[test]
    fn worker_launches_and_reports_completion() {
        let (report_tx, report_rx) = unbounded();
        let worker = Worker::spawn(InstanceId(1), report_tx, factory());
        let task = TaskId::new(JobId(1), 0);
        worker.send(MasterToWorker::LaunchTask {
            task,
            total_iterations: 50,
            run_until: None,
            checkpoint: None,
        });
        let started = report_rx.recv().unwrap();
        assert!(matches!(started, WorkerToMaster::TaskStarted { .. }));
        let exited = report_rx.recv().unwrap();
        match exited {
            WorkerToMaster::TaskExited {
                exit, completed, ..
            } => {
                assert_eq!(exit, TaskExit::Finished);
                assert_eq!(completed, 50);
            }
            other => panic!("unexpected report {other:?}"),
        }
        worker.shutdown();
        let stopped = report_rx.recv().unwrap();
        assert!(matches!(
            stopped,
            WorkerToMaster::WorkerStopped(InstanceId(1))
        ));
    }

    #[test]
    fn worker_checkpoints_on_command() {
        struct Slow;
        impl TaskProgram for Slow {
            fn step(&mut self, _: u64) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let (report_tx, report_rx) = unbounded();
        let worker = Worker::spawn(InstanceId(2), report_tx, Box::new(|_| Box::new(Slow)));
        let task = TaskId::new(JobId(2), 0);
        worker.send(MasterToWorker::LaunchTask {
            task,
            total_iterations: 1_000_000,
            run_until: None,
            checkpoint: None,
        });
        let _started = report_rx.recv().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        worker.send(MasterToWorker::CheckpointTask(task));
        let exited = report_rx.recv().unwrap();
        match exited {
            WorkerToMaster::TaskExited {
                exit, checkpoint, ..
            } => {
                assert_eq!(exit, TaskExit::Checkpointed);
                assert!(checkpoint.is_some());
            }
            other => panic!("unexpected report {other:?}"),
        }
        worker.shutdown();
    }

    #[test]
    fn worker_runs_bounded_segment_to_its_boundary() {
        let (report_tx, report_rx) = unbounded();
        let worker = Worker::spawn(InstanceId(4), report_tx, factory());
        let task = TaskId::new(JobId(4), 0);
        worker.send(MasterToWorker::LaunchTask {
            task,
            total_iterations: 1_000_000,
            run_until: Some(33),
            checkpoint: None,
        });
        let _started = report_rx.recv().unwrap();
        let exited = report_rx.recv().unwrap();
        match exited {
            WorkerToMaster::TaskExited {
                exit,
                completed,
                checkpoint,
                ..
            } => {
                assert_eq!(exit, TaskExit::Checkpointed);
                assert_eq!(completed, 33, "exact, deterministic boundary");
                assert!(checkpoint.is_some());
            }
            other => panic!("unexpected report {other:?}"),
        }
        worker.shutdown();
    }

    #[test]
    fn throughput_reports_cover_running_tasks() {
        struct Slow;
        impl TaskProgram for Slow {
            fn step(&mut self, _: u64) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let (report_tx, report_rx) = unbounded();
        let worker = Worker::spawn(InstanceId(3), report_tx, Box::new(|_| Box::new(Slow)));
        let task = TaskId::new(JobId(3), 0);
        worker.send(MasterToWorker::LaunchTask {
            task,
            total_iterations: 1_000_000,
            run_until: None,
            checkpoint: None,
        });
        let _started = report_rx.recv().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        worker.send(MasterToWorker::ReportThroughput);
        let report = report_rx.recv().unwrap();
        match report {
            WorkerToMaster::Throughput { completed, .. } => assert!(completed > 0),
            other => panic!("unexpected report {other:?}"),
        }
        worker.shutdown();
    }
}
