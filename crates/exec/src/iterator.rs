//! `EvaIterator`: the throughput-metering iteration wrapper (§5).
//!
//! User tasks loop over an `EvaIterator`, which counts iterations, exposes
//! the throughput achieved over the most recent window, and carries the
//! cooperative control signals the worker uses to checkpoint or stop a
//! task without killing it mid-iteration. This mirrors the paper's
//! "lightweight iterator API to monitor job throughput, requiring minimal
//! code changes on the user side".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Shared control block between a running task and its worker.
#[derive(Debug)]
pub struct IteratorControl {
    stop: AtomicBool,
    checkpoint: AtomicBool,
    /// Iteration at which the task checkpoints itself (`u64::MAX` = never).
    checkpoint_at: AtomicU64,
    iterations: AtomicU64,
}

impl Default for IteratorControl {
    fn default() -> Self {
        IteratorControl {
            stop: AtomicBool::new(false),
            checkpoint: AtomicBool::new(false),
            checkpoint_at: AtomicU64::new(u64::MAX),
            iterations: AtomicU64::new(0),
        }
    }
}

impl IteratorControl {
    /// Creates a control block.
    pub fn new() -> Arc<Self> {
        Arc::new(IteratorControl::default())
    }

    /// Requests a cooperative stop (the iterator's `next` returns `None`).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Requests a checkpoint at the next iteration boundary.
    pub fn request_checkpoint(&self) {
        self.checkpoint.store(true, Ordering::SeqCst);
    }

    /// Schedules a checkpoint at an exact iteration position: the task
    /// checkpoints itself upon reaching `iteration` instead of being
    /// interrupted at an arbitrary real-time instant, which makes the
    /// checkpointed position — and hence the blob — deterministic.
    pub fn request_checkpoint_at(&self, iteration: u64) {
        self.checkpoint_at.store(iteration, Ordering::SeqCst);
    }

    /// The scheduled checkpoint position, if any.
    pub fn checkpoint_bound(&self) -> Option<u64> {
        match self.checkpoint_at.load(Ordering::SeqCst) {
            u64::MAX => None,
            at => Some(at),
        }
    }

    /// True when a checkpoint is due: either requested cooperatively or
    /// the scheduled position has been reached.
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint.load(Ordering::SeqCst)
            || self.iterations.load(Ordering::SeqCst) >= self.checkpoint_at.load(Ordering::SeqCst)
    }

    /// Total iterations completed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::SeqCst)
    }
}

/// Windowed iteration metering plus cooperative control.
///
/// # Examples
///
/// ```
/// use eva_exec::{EvaIterator, IteratorControl};
///
/// let control = IteratorControl::new();
/// let mut it = EvaIterator::new(0..100u32, control.clone());
/// let mut sum = 0;
/// while let Some(x) = it.next_item() {
///     sum += x;
/// }
/// assert_eq!(sum, 4950);
/// assert_eq!(control.iterations(), 100);
/// ```
pub struct EvaIterator<I> {
    inner: I,
    control: Arc<IteratorControl>,
    window: Mutex<Vec<Instant>>,
    window_len: Duration,
    start_position: u64,
}

impl<I: Iterator> EvaIterator<I> {
    /// Wraps an iterator with a 10-second metering window.
    pub fn new(inner: I, control: Arc<IteratorControl>) -> Self {
        EvaIterator::with_window(inner, control, Duration::from_secs(10))
    }

    /// Wraps an iterator with an explicit metering window.
    pub fn with_window(inner: I, control: Arc<IteratorControl>, window_len: Duration) -> Self {
        EvaIterator {
            inner,
            control,
            window: Mutex::new(Vec::new()),
            window_len,
            start_position: 0,
        }
    }

    /// Restores the iterator to a checkpointed position by skipping
    /// already-processed items.
    pub fn resume_from(mut self, position: u64) -> Self {
        for _ in 0..position {
            if self.inner.next().is_none() {
                break;
            }
        }
        self.start_position = position;
        self.control.iterations.store(position, Ordering::SeqCst);
        self
    }

    /// The next work item, or `None` on exhaustion, stop request, or a
    /// due checkpoint (requested cooperatively or scheduled by position).
    pub fn next_item(&mut self) -> Option<I::Item> {
        if self.control.stop.load(Ordering::SeqCst) || self.control.checkpoint_due() {
            return None;
        }
        let item = self.inner.next()?;
        self.control.iterations.fetch_add(1, Ordering::SeqCst);
        let now = Instant::now();
        let mut window = self.window.lock();
        window.push(now);
        let cutoff = now.checked_sub(self.window_len).unwrap_or(now);
        window.retain(|t| *t >= cutoff);
        Some(item)
    }

    /// Whether a checkpoint is due (and `next_item` stopped).
    pub fn checkpoint_pending(&self) -> bool {
        self.control.checkpoint_due()
    }

    /// Iterations completed in the current run (excluding restored ones).
    pub fn completed_this_run(&self) -> u64 {
        self.control
            .iterations()
            .saturating_sub(self.start_position)
    }

    /// Iterations per second over the most recent window.
    pub fn windowed_throughput(&self) -> f64 {
        let window = self.window.lock();
        if window.len() < 2 {
            return 0.0;
        }
        let span = window
            .last()
            .unwrap()
            .duration_since(*window.first().unwrap())
            .as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        (window.len() - 1) as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_and_counts() {
        let control = IteratorControl::new();
        let mut it = EvaIterator::new(0..10u32, control.clone());
        let mut n = 0;
        while it.next_item().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(control.iterations(), 10);
    }

    #[test]
    fn stop_request_halts_iteration() {
        let control = IteratorControl::new();
        let mut it = EvaIterator::new(0..1000u32, control.clone());
        for _ in 0..5 {
            it.next_item();
        }
        control.request_stop();
        assert!(it.next_item().is_none());
        assert_eq!(control.iterations(), 5);
    }

    #[test]
    fn checkpoint_request_pauses_at_boundary() {
        let control = IteratorControl::new();
        let mut it = EvaIterator::new(0..1000u32, control.clone());
        for _ in 0..7 {
            it.next_item();
        }
        control.request_checkpoint();
        assert!(it.next_item().is_none());
        assert!(it.checkpoint_pending());
        assert_eq!(control.iterations(), 7);
    }

    #[test]
    fn scheduled_checkpoint_stops_at_exact_position() {
        let control = IteratorControl::new();
        control.request_checkpoint_at(13);
        let mut it = EvaIterator::new(0..1000u32, control.clone());
        let mut n = 0;
        while it.next_item().is_some() {
            n += 1;
        }
        assert_eq!(n, 13, "runs to the bound, never past it");
        assert!(it.checkpoint_pending());
        assert_eq!(control.iterations(), 13);
        assert_eq!(control.checkpoint_bound(), Some(13));
    }

    #[test]
    fn resume_skips_processed_items() {
        let control = IteratorControl::new();
        let mut it = EvaIterator::new(0..10u32, control.clone()).resume_from(6);
        assert_eq!(it.next_item(), Some(6));
        let mut rest = 1;
        while it.next_item().is_some() {
            rest += 1;
        }
        assert_eq!(rest, 4);
        assert_eq!(control.iterations(), 10);
        assert_eq!(it.completed_this_run(), 4);
    }

    #[test]
    fn resume_past_end_is_safe() {
        let control = IteratorControl::new();
        let mut it = EvaIterator::new(0..3u32, control).resume_from(100);
        assert!(it.next_item().is_none());
    }

    #[test]
    fn windowed_throughput_reflects_rate() {
        let control = IteratorControl::new();
        let mut it = EvaIterator::with_window(0..200u32, control, Duration::from_secs(5));
        for _ in 0..100 {
            it.next_item();
        }
        // 100 iterations in well under 5 s: throughput should be high.
        assert!(it.windowed_throughput() > 100.0);
    }
}
