//! The ThroughputMonitor (§3, §4.4).
//!
//! At every scheduling round the simulator (or the live task runtime)
//! reports, per job, the observed normalized throughput plus each task's
//! co-location context. Single-task observations update the table
//! directly; multi-task observations go through the straggler-attribution
//! rules so that a slowdown caused by one straggling sibling is not charged
//! to every instance the job touches.

use eva_types::{JobId, TaskId, WorkloadKind};

use crate::table::ThroughputTable;

/// The co-location context of one task at observation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskContext {
    /// The task.
    pub task: TaskId,
    /// Its workload kind.
    pub workload: WorkloadKind,
    /// Workload kinds of the tasks sharing its instance.
    pub colocated: Vec<WorkloadKind>,
}

impl TaskContext {
    /// Builds a context.
    pub fn new(task: TaskId, workload: WorkloadKind, colocated: Vec<WorkloadKind>) -> Self {
        TaskContext {
            task,
            workload,
            colocated,
        }
    }
}

/// Tracks observed throughput and updates the co-location table.
///
/// # Examples
///
/// ```
/// use eva_interference::{TaskContext, ThroughputMonitor};
/// use eva_types::{JobId, TaskId, WorkloadKind};
///
/// let mut monitor = ThroughputMonitor::with_default_tput(0.95);
/// let (w0, w1) = (WorkloadKind(0), WorkloadKind(1));
/// let t0 = TaskId::new(JobId(1), 0);
/// monitor.observe_single_task(TaskContext::new(t0, w0, vec![w1]), 0.88);
/// assert!((monitor.table().estimate(w0, &[w1]) - 0.88).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputMonitor {
    table: ThroughputTable,
    observations: u64,
}

impl ThroughputMonitor {
    /// Builds a monitor with the given default pairwise throughput `t`.
    pub fn with_default_tput(t: f64) -> Self {
        ThroughputMonitor {
            table: ThroughputTable::new(t),
            observations: 0,
        }
    }

    /// Read access to the co-location table.
    pub fn table(&self) -> &ThroughputTable {
        &self.table
    }

    /// Total observations processed.
    pub fn observation_count(&self) -> u64 {
        self.observations
    }

    /// Records an observation for a task of a single-task job: any
    /// throughput loss is unambiguously caused by its own co-location.
    pub fn observe_single_task(&mut self, ctx: TaskContext, tput: f64) {
        self.observations += 1;
        self.table.record(ctx.workload, &ctx.colocated, tput);
    }

    /// Records a job-level observation for a multi-task (gang-coupled) job
    /// and attributes it to exactly one table entry using the paper's three
    /// rules (§4.4):
    ///
    /// 1. **No previous observations** for any task's context → update the
    ///    entry of the task co-located with the *most* tasks.
    /// 2. **Some recorded context has lower throughput** than observed →
    ///    that recorded straggler explains the slowdown; raise the entry
    ///    with the lowest recorded throughput toward the observation.
    /// 3. **All recorded contexts show higher throughput** → the slowdown
    ///    must come from an *unrecorded* context; update the unrecorded
    ///    task co-located with the most tasks (falling back to the lowest
    ///    recorded entry if every context is recorded).
    ///
    /// Tasks running alone are skipped: they cannot be the interference
    /// source. Returns the updated `(workload, colocated)` entry, if any.
    pub fn observe_multi_task(
        &mut self,
        _job: JobId,
        contexts: &[TaskContext],
        observed_tput: f64,
    ) -> Option<(WorkloadKind, Vec<WorkloadKind>)> {
        self.observations += 1;
        let colocated: Vec<&TaskContext> = contexts
            .iter()
            .filter(|c| !c.colocated.is_empty())
            .collect();
        if colocated.is_empty() {
            // Every task runs alone — nothing to attribute.
            return None;
        }
        let recorded: Vec<Option<f64>> = colocated
            .iter()
            .map(|c| self.table.recorded(c.workload, &c.colocated))
            .collect();

        let most_colocated = |candidates: &[&TaskContext]| -> usize {
            let best = candidates
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.colocated.len())
                .map(|(i, _)| i)
                .unwrap_or(0);
            best
        };

        let target = if recorded.iter().all(Option::is_none) {
            // Rule 1.
            most_colocated(&colocated)
        } else if let Some((idx, _)) = recorded
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|v| (i, v)))
            .filter(|(_, v)| *v < observed_tput)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        {
            // Rule 2: a recorded context already explains at least this much
            // slowdown; adjust the lowest one upward.
            idx
        } else {
            // Rule 3: prefer the unrecorded context with the most
            // co-located tasks.
            let unrecorded: Vec<usize> = recorded
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_none())
                .map(|(i, _)| i)
                .collect();
            if unrecorded.is_empty() {
                // Every context recorded and all are above the observation:
                // conservatively lower the minimum entry.
                recorded
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|v| (i, v)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            } else {
                let candidates: Vec<&TaskContext> =
                    unrecorded.iter().map(|i| colocated[*i]).collect();
                let local = most_colocated(&candidates);
                unrecorded[local]
            }
        };

        let ctx = colocated[target];
        self.table
            .record(ctx.workload, &ctx.colocated, observed_tput);
        Some((ctx.workload, ctx.colocated.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W0: WorkloadKind = WorkloadKind(0);
    const W1: WorkloadKind = WorkloadKind(1);
    const W2: WorkloadKind = WorkloadKind(2);
    const W3: WorkloadKind = WorkloadKind(3);

    fn tid(job: u64, idx: u32) -> TaskId {
        TaskId::new(JobId(job), idx)
    }

    #[test]
    fn single_task_observation_updates_exact_entry() {
        let mut m = ThroughputMonitor::with_default_tput(0.95);
        m.observe_single_task(TaskContext::new(tid(1, 0), W0, vec![W1, W2]), 0.8);
        assert_eq!(m.table().recorded(W0, &[W1, W2]), Some(0.8));
        assert_eq!(m.observation_count(), 1);
    }

    #[test]
    fn rule1_targets_most_colocated_task() {
        let mut m = ThroughputMonitor::with_default_tput(0.95);
        let contexts = vec![
            TaskContext::new(tid(1, 0), W0, vec![]),   // solo — skipped
            TaskContext::new(tid(1, 1), W0, vec![W1]), // 1 co-located
            TaskContext::new(tid(1, 2), W0, vec![W1, W2]), // 2 co-located
        ];
        let updated = m.observe_multi_task(JobId(1), &contexts, 0.7).unwrap();
        assert_eq!(updated, (W0, vec![W1, W2]));
        assert_eq!(m.table().recorded(W0, &[W1, W2]), Some(0.7));
        // The other context was not touched.
        assert_eq!(m.table().recorded(W0, &[W1]), None);
    }

    #[test]
    fn rule2_raises_lowest_recorded_entry() {
        let mut m = ThroughputMonitor::with_default_tput(0.95);
        // Pre-record: context A is known to be slow (0.6).
        m.observe_single_task(TaskContext::new(tid(9, 0), W0, vec![W1]), 0.6);
        m.observe_single_task(TaskContext::new(tid(9, 1), W0, vec![W2]), 0.9);
        let contexts = vec![
            TaskContext::new(tid(1, 0), W0, vec![W1]),
            TaskContext::new(tid(1, 1), W0, vec![W2]),
        ];
        // Observed 0.8 > recorded 0.6: the 0.6 entry was too pessimistic;
        // raise it.
        let updated = m.observe_multi_task(JobId(1), &contexts, 0.8).unwrap();
        assert_eq!(updated, (W0, vec![W1]));
        assert_eq!(m.table().recorded(W0, &[W1]), Some(0.8));
        assert_eq!(m.table().recorded(W0, &[W2]), Some(0.9));
    }

    #[test]
    fn rule3_targets_unrecorded_with_most_colocated() {
        let mut m = ThroughputMonitor::with_default_tput(0.95);
        // One context recorded at high throughput.
        m.observe_single_task(TaskContext::new(tid(9, 0), W0, vec![W1]), 0.98);
        let contexts = vec![
            TaskContext::new(tid(1, 0), W0, vec![W1]), // recorded, 0.98
            TaskContext::new(tid(1, 1), W0, vec![W2]), // unrecorded
            TaskContext::new(tid(1, 2), W0, vec![W2, W3]), // unrecorded, bigger
        ];
        // Observed 0.75 < every recorded value → blame an unrecorded one.
        let updated = m.observe_multi_task(JobId(1), &contexts, 0.75).unwrap();
        assert_eq!(updated, (W0, vec![W2, W3]));
        assert_eq!(m.table().recorded(W0, &[W1]), Some(0.98));
    }

    #[test]
    fn rule3_fallback_lowers_minimum_when_all_recorded() {
        let mut m = ThroughputMonitor::with_default_tput(0.95);
        m.observe_single_task(TaskContext::new(tid(9, 0), W0, vec![W1]), 0.9);
        m.observe_single_task(TaskContext::new(tid(9, 1), W0, vec![W2]), 0.85);
        let contexts = vec![
            TaskContext::new(tid(1, 0), W0, vec![W1]),
            TaskContext::new(tid(1, 1), W0, vec![W2]),
        ];
        let updated = m.observe_multi_task(JobId(1), &contexts, 0.7).unwrap();
        // The lowest recorded entry (W2 at 0.85) absorbs the correction.
        assert_eq!(updated, (W0, vec![W2]));
        assert_eq!(m.table().recorded(W0, &[W2]), Some(0.7));
    }

    #[test]
    fn all_solo_tasks_attribute_nothing() {
        let mut m = ThroughputMonitor::with_default_tput(0.95);
        let contexts = vec![
            TaskContext::new(tid(1, 0), W0, vec![]),
            TaskContext::new(tid(1, 1), W0, vec![]),
        ];
        assert!(m.observe_multi_task(JobId(1), &contexts, 0.9).is_none());
        assert!(m.table().is_empty());
    }

    #[test]
    fn repeated_observations_converge_upward() {
        // The paper guarantees recorded values are lower bounds that adjust
        // upward with more observations. Simulate: true local interference
        // is 0.9 for context (W0|W1) but the first observation was polluted
        // by a straggler to 0.7.
        let mut m = ThroughputMonitor::with_default_tput(0.95);
        let contexts = vec![TaskContext::new(tid(1, 0), W0, vec![W1])];
        m.observe_multi_task(JobId(1), &contexts, 0.7);
        assert_eq!(m.table().recorded(W0, &[W1]), Some(0.7));
        // Later the straggler is gone and the job observes 0.9: rule 2
        // lifts the entry.
        m.observe_multi_task(JobId(1), &contexts, 0.9);
        assert_eq!(m.table().recorded(W0, &[W1]), Some(0.9));
    }
}
