//! The co-location throughput table (§4.3).

use std::collections::HashMap;

use eva_types::WorkloadKind;

/// Key of one table entry: a workload plus the sorted multiset of workloads
/// co-located with it.
///
/// # Examples
///
/// ```
/// use eva_interference::ColocationKey;
/// use eva_types::WorkloadKind;
///
/// let a = ColocationKey::new(WorkloadKind(0), &[WorkloadKind(2), WorkloadKind(1)]);
/// let b = ColocationKey::new(WorkloadKind(0), &[WorkloadKind(1), WorkloadKind(2)]);
/// assert_eq!(a, b); // Order of co-located tasks is irrelevant.
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColocationKey {
    /// The observed workload.
    pub task: WorkloadKind,
    /// Sorted workloads sharing the instance.
    pub others: Vec<WorkloadKind>,
}

impl ColocationKey {
    /// Builds a key, sorting the co-located multiset.
    pub fn new(task: WorkloadKind, others: &[WorkloadKind]) -> Self {
        let mut others = others.to_vec();
        others.sort();
        ColocationKey { task, others }
    }

    /// True when the task runs alone.
    pub fn is_solo(&self) -> bool {
        self.others.is_empty()
    }
}

/// The co-location throughput table.
///
/// Lookups fall back from exact recorded groups, to products of recorded
/// pairwise entries, to the default `t` for never-seen pairs. Recording an
/// observation stores the exact group entry and, for pairs, the pairwise
/// entry used by the product estimator.
///
/// # Examples
///
/// ```
/// use eva_interference::ThroughputTable;
/// use eva_types::WorkloadKind;
///
/// let (a, b, c) = (WorkloadKind(0), WorkloadKind(1), WorkloadKind(2));
/// let mut table = ThroughputTable::new(0.95);
/// // Nothing recorded: pairwise default applies multiplicatively.
/// assert!((table.estimate(a, &[b, c]) - 0.95 * 0.95).abs() < 1e-12);
/// table.record(a, &[b], 0.9);
/// assert!((table.estimate(a, &[b, c]) - 0.9 * 0.95).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputTable {
    default_tput: f64,
    exact: HashMap<ColocationKey, f64>,
    pairwise: HashMap<(WorkloadKind, WorkloadKind), f64>,
}

impl ThroughputTable {
    /// Builds an empty table with the given default pairwise throughput
    /// (`t` in the paper; 0.95 in all experiments).
    pub fn new(default_tput: f64) -> Self {
        ThroughputTable {
            default_tput: default_tput.clamp(0.0, 1.0),
            exact: HashMap::new(),
            pairwise: HashMap::new(),
        }
    }

    /// The default pairwise throughput.
    pub fn default_tput(&self) -> f64 {
        self.default_tput
    }

    /// Number of recorded exact group entries.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Exact recorded throughput for a group, if the group was observed.
    pub fn recorded(&self, task: WorkloadKind, others: &[WorkloadKind]) -> Option<f64> {
        if others.is_empty() {
            return Some(1.0);
        }
        self.exact.get(&ColocationKey::new(task, others)).copied()
    }

    /// Recorded pairwise throughput, if observed.
    pub fn recorded_pairwise(&self, task: WorkloadKind, other: WorkloadKind) -> Option<f64> {
        self.pairwise.get(&(task, other)).copied()
    }

    /// Pairwise throughput with the default fallback.
    pub fn pairwise_or_default(&self, task: WorkloadKind, other: WorkloadKind) -> f64 {
        self.recorded_pairwise(task, other)
            .unwrap_or(self.default_tput)
    }

    /// The scheduler-facing estimate `tput(τ, T)`:
    ///
    /// 1. a task running alone has throughput 1.0;
    /// 2. a previously observed group returns its recorded value;
    /// 3. otherwise the product of pairwise throughputs, defaulting unknown
    ///    pairs to `t`.
    pub fn estimate(&self, task: WorkloadKind, others: &[WorkloadKind]) -> f64 {
        if others.is_empty() {
            return 1.0;
        }
        if let Some(v) = self.recorded(task, others) {
            return v;
        }
        others
            .iter()
            .map(|o| self.pairwise_or_default(task, *o))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Records an observed throughput for a group. Pair observations also
    /// update the pairwise estimator. Values are clamped to `[0, 1]`.
    pub fn record(&mut self, task: WorkloadKind, others: &[WorkloadKind], tput: f64) {
        if others.is_empty() {
            // Solo throughput is 1.0 by definition of normalization;
            // nothing to learn.
            return;
        }
        let tput = tput.clamp(0.0, 1.0);
        let key = ColocationKey::new(task, others);
        if key.others.len() == 1 {
            self.pairwise.insert((task, key.others[0]), tput);
        }
        self.exact.insert(key, tput);
    }

    /// Removes every recorded entry (used by tests and ablations).
    pub fn clear(&mut self) {
        self.exact.clear();
        self.pairwise.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: WorkloadKind = WorkloadKind(0);
    const B: WorkloadKind = WorkloadKind(1);
    const C: WorkloadKind = WorkloadKind(2);

    #[test]
    fn solo_tasks_have_unit_throughput() {
        let table = ThroughputTable::new(0.95);
        assert_eq!(table.estimate(A, &[]), 1.0);
        assert_eq!(table.recorded(A, &[]), Some(1.0));
    }

    #[test]
    fn unknown_pairs_use_default() {
        let table = ThroughputTable::new(0.9);
        assert_eq!(table.estimate(A, &[B]), 0.9);
        assert!((table.estimate(A, &[B, C]) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn exact_entries_win_over_products() {
        let mut table = ThroughputTable::new(0.95);
        table.record(A, &[B], 0.8);
        table.record(A, &[C], 0.9);
        // Exact group entry beats 0.8 × 0.9.
        table.record(A, &[B, C], 0.85);
        assert_eq!(table.estimate(A, &[B, C]), 0.85);
        assert_eq!(table.estimate(A, &[C, B]), 0.85);
    }

    #[test]
    fn pairwise_products_compose() {
        let mut table = ThroughputTable::new(0.95);
        table.record(A, &[B], 0.8);
        // A with {B, C}: recorded pair 0.8 × default 0.95.
        assert!((table.estimate(A, &[B, C]) - 0.76).abs() < 1e-12);
    }

    #[test]
    fn records_are_directional() {
        let mut table = ThroughputTable::new(0.95);
        table.record(A, &[B], 0.7);
        assert_eq!(table.recorded_pairwise(A, B), Some(0.7));
        assert_eq!(table.recorded_pairwise(B, A), None);
        assert_eq!(table.estimate(B, &[A]), 0.95);
    }

    #[test]
    fn key_is_order_insensitive_multiset() {
        let k1 = ColocationKey::new(A, &[C, B, B]);
        let k2 = ColocationKey::new(A, &[B, C, B]);
        let k3 = ColocationKey::new(A, &[B, C]);
        assert_eq!(k1, k2);
        assert_ne!(k1, k3); // Multiplicity matters.
    }

    #[test]
    fn values_clamp_to_unit_interval() {
        let mut table = ThroughputTable::new(0.95);
        table.record(A, &[B], 1.7);
        assert_eq!(table.estimate(A, &[B]), 1.0);
        table.record(A, &[B], -0.5);
        assert_eq!(table.estimate(A, &[B]), 0.0);
    }

    #[test]
    fn solo_observations_are_ignored() {
        let mut table = ThroughputTable::new(0.95);
        table.record(A, &[], 0.5);
        assert!(table.is_empty());
        assert_eq!(table.estimate(A, &[]), 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut table = ThroughputTable::new(0.95);
        table.record(A, &[B], 0.8);
        assert_eq!(table.len(), 1);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.estimate(A, &[B]), 0.95);
    }
}
