//! Online interference learning (§4.3–§4.4).
//!
//! Eva never profiles co-location interference ahead of time — the cost of
//! doing so grows exponentially with the number of task types. Instead the
//! **ThroughputMonitor** observes task throughput at every scheduling round
//! and maintains the **co-location throughput table**, which the scheduler
//! consults to compute throughput-normalized reservation prices.
//!
//! The table is keyed by *workload kind* (not task id) and by the sorted
//! multiset of co-located kinds, so an observation made for one GPT-2 task
//! generalizes to every other GPT-2 task. Unseen groups are estimated as
//! the product of pairwise throughputs; unknown pairs default to the
//! tunable `t` (0.95 in all the paper's experiments).
//!
//! For multi-task (gang-coupled) jobs a throughput drop may come from local
//! co-location *or* from a straggler sibling, so the monitor applies the
//! paper's three attribution rules (§4.4) to decide which single table
//! entry each job-level observation updates.

pub mod monitor;
pub mod table;

pub use monitor::{TaskContext, ThroughputMonitor};
pub use table::{ColocationKey, ThroughputTable};

/// The paper's default optimistic throughput for unknown pairs (§4.3).
pub const DEFAULT_PAIRWISE_TPUT: f64 = 0.95;
