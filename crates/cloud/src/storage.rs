//! Global storage stub (the S3 bucket of §5).
//!
//! Every worker in the paper mounts a shared bucket holding datasets and
//! checkpoints. The task-runtime crate uses this in-memory stand-in for
//! checkpoint/restore during migrations; the simulator only models its
//! latency through the per-workload checkpoint delays.

use std::collections::BTreeMap;

/// An in-memory key → blob store with basic usage accounting.
///
/// # Examples
///
/// ```
/// use eva_cloud::GlobalStorage;
///
/// let mut s3 = GlobalStorage::new();
/// s3.put("ckpt/job-1/t0", vec![1, 2, 3]);
/// assert_eq!(s3.get("ckpt/job-1/t0"), Some(&[1u8, 2, 3][..]));
/// assert_eq!(s3.total_bytes(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalStorage {
    objects: BTreeMap<String, Vec<u8>>,
    puts: u64,
    gets: u64,
}

impl GlobalStorage {
    /// Creates an empty store.
    pub fn new() -> Self {
        GlobalStorage::default()
    }

    /// Writes (or overwrites) an object.
    pub fn put(&mut self, key: &str, bytes: Vec<u8>) {
        self.puts += 1;
        self.objects.insert(key.to_string(), bytes);
    }

    /// Reads an object.
    pub fn get(&mut self, key: &str) -> Option<&[u8]> {
        self.gets += 1;
        self.objects.get(key).map(|v| v.as_slice())
    }

    /// Deletes an object; returns whether it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        self.objects.remove(key).is_some()
    }

    /// Lists keys under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.values().map(|v| v.len() as u64).sum()
    }

    /// `(put, get)` operation counters.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.puts, self.gets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_cycle() {
        let mut s = GlobalStorage::new();
        assert!(s.is_empty());
        s.put("a", vec![0; 10]);
        s.put("a", vec![0; 4]); // Overwrite shrinks.
        assert_eq!(s.total_bytes(), 4);
        assert!(s.get("a").is_some());
        assert!(s.delete("a"));
        assert!(!s.delete("a"));
        assert!(s.get("a").is_none());
    }

    #[test]
    fn list_by_prefix() {
        let mut s = GlobalStorage::new();
        s.put("ckpt/j1/t0", vec![1]);
        s.put("ckpt/j1/t1", vec![2]);
        s.put("ckpt/j2/t0", vec![3]);
        s.put("data/imagenet", vec![4]);
        assert_eq!(s.list("ckpt/j1/"), vec!["ckpt/j1/t0", "ckpt/j1/t1"]);
        assert_eq!(s.list("ckpt/").len(), 3);
        assert_eq!(s.list("zzz").len(), 0);
    }

    #[test]
    fn op_counters_track_usage() {
        let mut s = GlobalStorage::new();
        s.put("k", vec![]);
        s.get("k");
        s.get("missing");
        assert_eq!(s.op_counts(), (1, 2));
    }
}
