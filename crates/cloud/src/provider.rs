//! The simulated cloud provider: instance lifecycle and billing.
//!
//! An instance moves through `Acquiring → SettingUp → Running → Terminated`.
//! Billing is per-second (EC2 Linux semantics) and starts the moment
//! acquisition completes — i.e. setup time is *billed but unusable*, which
//! is exactly the "provisioned but idle" waste the paper charges against
//! reconfiguration (§2.3).

use std::collections::BTreeMap;

use rand::Rng;

use eva_types::{Cost, EvaError, InstanceId, InstanceTypeId, Result, SimDuration, SimTime};

use crate::catalog::{Catalog, InstanceType};
use crate::delays::{DelayModel, DelaySample};
use crate::zones::ZoneSet;

/// Lifecycle state of a provisioned instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// The cloud is still acquiring capacity; not yet billed.
    Acquiring,
    /// Acquired and billed, but still installing images / mounting storage.
    SettingUp,
    /// Ready to run tasks.
    Running,
    /// Terminated; billing stopped.
    Terminated,
}

/// A provisioned cloud instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Unique id.
    pub id: InstanceId,
    /// Catalog type.
    pub type_id: InstanceTypeId,
    /// Zone the instance was placed in.
    pub zone: String,
    /// When the provision request was issued.
    pub requested_at: SimTime,
    /// When acquisition completes (billing starts).
    pub billed_from: SimTime,
    /// When setup completes (instance usable).
    pub ready_at: SimTime,
    /// Termination time, if terminated.
    pub terminated_at: Option<SimTime>,
}

impl Instance {
    /// The lifecycle state at time `now`.
    pub fn state(&self, now: SimTime) -> InstanceState {
        if let Some(t) = self.terminated_at {
            if now >= t {
                return InstanceState::Terminated;
            }
        }
        if now < self.billed_from {
            InstanceState::Acquiring
        } else if now < self.ready_at {
            InstanceState::SettingUp
        } else {
            InstanceState::Running
        }
    }

    /// Billed uptime accumulated by `now`.
    pub fn uptime(&self, now: SimTime) -> SimDuration {
        let end = match self.terminated_at {
            Some(t) if t < now => t,
            _ => now,
        };
        end.duration_since(self.billed_from)
    }
}

/// A provisioning request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvisionRequest {
    /// The type to provision.
    pub type_id: InstanceTypeId,
    /// When the request is issued.
    pub at: SimTime,
}

/// The simulated cloud: owns the catalog, zones, delay model, and all
/// instances ever provisioned, and computes the total bill.
///
/// # Examples
///
/// ```
/// use eva_cloud::{Catalog, CloudProvider, DelayModel, FidelityMode, ProvisionRequest};
/// use eva_types::SimTime;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let catalog = Catalog::aws_eval_2025();
/// let ty = catalog.by_name("c7i.xlarge").unwrap().id;
/// let mut cloud = CloudProvider::new(catalog, DelayModel::table1(FidelityMode::Nominal));
/// let mut rng = StdRng::seed_from_u64(0);
///
/// let id = cloud
///     .provision(ProvisionRequest { type_id: ty, at: SimTime::ZERO }, &mut rng)
///     .unwrap();
/// let ready = cloud.instance(id).unwrap().ready_at;
/// assert_eq!(ready.duration_since(SimTime::ZERO).as_secs(), 19 + 190);
/// ```
#[derive(Debug, Clone)]
pub struct CloudProvider {
    catalog: Catalog,
    delays: DelayModel,
    zones: ZoneSet,
    instances: BTreeMap<InstanceId, Instance>,
    next_id: u64,
    launches: u64,
    /// Provider-wide cap on concurrently live instances (`None` =
    /// unlimited). Fault injection uses this to model capacity shocks;
    /// existing instances survive a cap below the current live count —
    /// only *new* provisions are rejected until capacity frees up.
    pool_limit: Option<u64>,
    /// Dynamic price multipliers: `(from, factor)` steps sorted by time,
    /// each factor applying from its instant until the next step. Empty =
    /// static catalog prices (the exact historical billing path).
    price_steps: Vec<(SimTime, f64)>,
    /// Frozen `(id, billed uptime hours)` of retired instances, in
    /// retirement order (see [`CloudProvider::retire_instance`]).
    retired_uptimes: Vec<(InstanceId, f64)>,
    /// Total bill of retired instances. Exact micro-dollar integers sum
    /// order-free, so a running total loses nothing.
    retired_bill: Cost,
    /// Latest termination time among retired instances.
    retired_end: Option<SimTime>,
}

impl CloudProvider {
    /// Builds a provider over a catalog with a single unlimited zone.
    pub fn new(catalog: Catalog, delays: DelayModel) -> Self {
        CloudProvider::with_zones(catalog, delays, ZoneSet::single_unlimited())
    }

    /// Builds a provider with explicit zones.
    pub fn with_zones(catalog: Catalog, delays: DelayModel, zones: ZoneSet) -> Self {
        CloudProvider {
            catalog,
            delays,
            zones,
            instances: BTreeMap::new(),
            next_id: 0,
            launches: 0,
            pool_limit: None,
            price_steps: Vec::new(),
            retired_uptimes: Vec::new(),
            retired_bill: Cost::ZERO,
            retired_end: None,
        }
    }

    /// Caps (or uncaps) the number of concurrently live instances.
    pub fn set_pool_limit(&mut self, limit: Option<u64>) {
        self.pool_limit = limit;
    }

    /// The current pool cap, if any.
    pub fn pool_limit(&self) -> Option<u64> {
        self.pool_limit
    }

    /// Number of instances alive (not terminated) at `now`.
    pub fn live_count(&self, now: SimTime) -> u64 {
        self.live_instances(now).count() as u64
    }

    /// Free pool capacity under the current cap at `now`, `None` when
    /// uncapped. Saturating: a cap imposed *below* the live count (a
    /// capacity shock hitting a full pool) reports zero, never underflows.
    pub fn free_capacity(&self, now: SimTime) -> Option<u64> {
        self.pool_limit
            .map(|limit| limit.saturating_sub(self.live_count(now)))
    }

    /// Installs a dynamic price schedule: `(from, factor)` steps, each
    /// multiplying every catalog hourly rate from its instant until the
    /// next step. An empty schedule restores static catalog pricing.
    pub fn set_price_schedule(&mut self, mut steps: Vec<(SimTime, f64)>) {
        steps.retain(|(_, f)| f.is_finite() && *f >= 0.0);
        steps.sort_by_key(|(at, _)| *at);
        self.price_steps = steps;
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The delay model in use.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delays
    }

    /// Total instances ever launched (Table 10's "Instances Launched").
    pub fn launch_count(&self) -> u64 {
        self.launches
    }

    /// Provisions a new instance, sampling acquisition/setup delays and
    /// retrying across zones if needed.
    pub fn provision<R: Rng + ?Sized>(
        &mut self,
        req: ProvisionRequest,
        rng: &mut R,
    ) -> Result<InstanceId> {
        let ty = self
            .catalog
            .get(req.type_id)
            .ok_or(EvaError::UnknownInstanceType(req.type_id))?
            .id;
        if self.free_capacity(req.at) == Some(0) {
            return Err(EvaError::ProvisioningFailed {
                instance_type: ty,
                reason: format!(
                    "provider pool at capacity ({} live / limit {})",
                    self.live_count(req.at),
                    self.pool_limit.unwrap_or(0)
                ),
            });
        }
        let zone = self.zones.allocate(ty)?;
        let DelaySample { acquisition, setup } = self.delays.sample(rng);
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        self.launches += 1;
        let billed_from = req.at + acquisition;
        self.instances.insert(
            id,
            Instance {
                id,
                type_id: ty,
                zone,
                requested_at: req.at,
                billed_from,
                ready_at: billed_from + setup,
                terminated_at: None,
            },
        );
        Ok(id)
    }

    /// Terminates an instance at `at`. Idempotent for already-terminated
    /// instances (keeps the earlier termination time).
    pub fn terminate(&mut self, id: InstanceId, at: SimTime) -> Result<()> {
        let (ty, zone, newly_terminated) = {
            let inst = self
                .instances
                .get_mut(&id)
                .ok_or(EvaError::UnknownInstance(id))?;
            if inst.terminated_at.is_some() {
                (inst.type_id, inst.zone.clone(), false)
            } else {
                inst.terminated_at = Some(at.max(inst.requested_at));
                (inst.type_id, inst.zone.clone(), true)
            }
        };
        if newly_terminated {
            self.zones.release(ty, &zone);
        }
        Ok(())
    }

    /// Looks up an instance.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    /// The catalog type of an instance.
    pub fn instance_type(&self, id: InstanceId) -> Option<&InstanceType> {
        self.instances
            .get(&id)
            .and_then(|i| self.catalog.get(i.type_id))
    }

    /// Iterates over every instance record still held — all instances
    /// ever provisioned, minus any whose record was folded away by
    /// [`CloudProvider::retire_instance`].
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// Instances alive (not terminated) at `now`.
    pub fn live_instances(&self, now: SimTime) -> impl Iterator<Item = &Instance> {
        self.instances
            .values()
            .filter(move |i| i.state(now) != InstanceState::Terminated)
    }

    /// The bill for one instance up to `now`: per-second billing of uptime.
    pub fn instance_bill(&self, id: InstanceId, now: SimTime) -> Result<Cost> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(EvaError::UnknownInstance(id))?;
        let ty = self
            .catalog
            .get(inst.type_id)
            .ok_or(EvaError::UnknownInstanceType(inst.type_id))?;
        if self.price_steps.is_empty() {
            return Ok(ty.hourly_cost.for_hours(inst.uptime(now).as_hours_f64()));
        }
        // Dynamic pricing: integrate the step function over the billed
        // window, each segment at its prevailing multiplier.
        let hourly = ty.hourly_cost.as_dollars();
        let start = inst.billed_from;
        let end = match inst.terminated_at {
            Some(t) if t < now => t,
            _ => now,
        };
        let mut dollars = 0.0;
        let mut cursor = start;
        let mut factor = 1.0;
        for (at, f) in &self.price_steps {
            if *at <= cursor {
                factor = *f;
                continue;
            }
            if *at >= end {
                break;
            }
            dollars += hourly * factor * at.duration_since(cursor).as_hours_f64();
            cursor = *at;
            factor = *f;
        }
        dollars += hourly * factor * end.duration_since(cursor).as_hours_f64();
        Ok(Cost::from_dollars(dollars))
    }

    /// The total bill across all instances up to `now` — the paper's
    /// primary "Total Cost" metric. Retired instances contribute their
    /// frozen bill.
    pub fn total_bill(&self, now: SimTime) -> Cost {
        self.retired_bill
            + self
                .instances
                .keys()
                .map(|id| self.instance_bill(*id, now).unwrap_or(Cost::ZERO))
                .sum()
    }

    /// Drops a *terminated* instance's record, folding its billed
    /// uptime and bill into frozen accumulators first. Returns whether
    /// a record was retired (`false` for unknown or still-live ids).
    ///
    /// A terminated instance's uptime and bill are independent of the
    /// observation time once it is in the past — `uptime(now)` and
    /// [`CloudProvider::instance_bill`] both clamp to `terminated_at` —
    /// so folding at retirement is bit-identical to folding at the end
    /// of the run. Long-lived service worlds retire records as
    /// terminations pass to keep provider memory proportional to the
    /// live fleet, not the fleet-ever-launched.
    pub fn retire_instance(&mut self, id: InstanceId) -> bool {
        let Some(t) = self.instances.get(&id).and_then(|i| i.terminated_at) else {
            return false;
        };
        let bill = self.instance_bill(id, t).unwrap_or(Cost::ZERO);
        let inst = self.instances.remove(&id).expect("checked above");
        self.retired_uptimes.push((id, inst.uptime(t).as_hours_f64()));
        self.retired_bill += bill;
        self.retired_end = Some(self.retired_end.map_or(t, |e| e.max(t)));
        true
    }

    /// Latest termination time across all instances ever provisioned,
    /// retired records included — the report's billing horizon.
    pub fn max_terminated_at(&self) -> Option<SimTime> {
        let held = self
            .instances
            .values()
            .filter_map(|i| i.terminated_at)
            .max();
        match (held, self.retired_end) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// `(id, billed uptime hours)` for every instance ever provisioned
    /// — retired records included — in ascending id order, the exact
    /// sequence the report's `billed_hours` fold and uptime CDF have
    /// always consumed.
    pub fn uptime_rows(&self, end: SimTime) -> Vec<(InstanceId, f64)> {
        let mut rows: Vec<(InstanceId, f64)> = self
            .instances
            .values()
            .map(|i| (i.id, i.uptime(end).as_hours_f64()))
            .collect();
        rows.extend_from_slice(&self.retired_uptimes);
        rows.sort_by_key(|&(id, _)| id);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delays::FidelityMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nominal_cloud() -> (CloudProvider, StdRng) {
        (
            CloudProvider::new(
                Catalog::aws_eval_2025(),
                DelayModel::table1(FidelityMode::Nominal),
            ),
            StdRng::seed_from_u64(7),
        )
    }

    #[test]
    fn lifecycle_states_progress() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("p3.2xlarge").unwrap().id;
        let id = cloud
            .provision(
                ProvisionRequest {
                    type_id: ty,
                    at: SimTime::from_secs(100),
                },
                &mut rng,
            )
            .unwrap();
        let inst = cloud.instance(id).unwrap().clone();
        assert_eq!(
            inst.state(SimTime::from_secs(100)),
            InstanceState::Acquiring
        );
        assert_eq!(
            inst.state(SimTime::from_secs(118)),
            InstanceState::Acquiring
        );
        assert_eq!(
            inst.state(SimTime::from_secs(119)),
            InstanceState::SettingUp
        );
        assert_eq!(
            inst.state(SimTime::from_secs(308)),
            InstanceState::SettingUp
        );
        assert_eq!(inst.state(SimTime::from_secs(309)), InstanceState::Running);
        cloud.terminate(id, SimTime::from_secs(400)).unwrap();
        let inst = cloud.instance(id).unwrap();
        assert_eq!(
            inst.state(SimTime::from_secs(400)),
            InstanceState::Terminated
        );
    }

    #[test]
    fn billing_starts_at_acquisition_not_request() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("p3.2xlarge").unwrap().id;
        let id = cloud
            .provision(
                ProvisionRequest {
                    type_id: ty,
                    at: SimTime::ZERO,
                },
                &mut rng,
            )
            .unwrap();
        // One hour after billing starts (19s acquisition).
        let now = SimTime::from_secs(19 + 3600);
        let bill = cloud.instance_bill(id, now).unwrap();
        assert_eq!(bill, Cost::from_dollars(3.06));
    }

    #[test]
    fn billing_stops_at_termination() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("c7i.2xlarge").unwrap().id;
        let id = cloud
            .provision(
                ProvisionRequest {
                    type_id: ty,
                    at: SimTime::ZERO,
                },
                &mut rng,
            )
            .unwrap();
        cloud.terminate(id, SimTime::from_secs(19 + 1800)).unwrap();
        // Much later, the bill is still half an hour.
        let bill = cloud
            .instance_bill(id, SimTime::from_hours_f64(100.0))
            .unwrap();
        assert_eq!(bill, Cost::from_dollars(0.357 / 2.0));
        // Terminating again keeps the original time.
        cloud.terminate(id, SimTime::from_hours_f64(50.0)).unwrap();
        let bill2 = cloud
            .instance_bill(id, SimTime::from_hours_f64(100.0))
            .unwrap();
        assert_eq!(bill, bill2);
    }

    #[test]
    fn total_bill_sums_instances() {
        let (mut cloud, mut rng) = nominal_cloud();
        let a = cloud.catalog().by_name("c7i.large").unwrap().id;
        let b = cloud.catalog().by_name("r7i.large").unwrap().id;
        for ty in [a, b] {
            cloud
                .provision(
                    ProvisionRequest {
                        type_id: ty,
                        at: SimTime::ZERO,
                    },
                    &mut rng,
                )
                .unwrap();
        }
        let now = SimTime::from_secs(19 + 3600);
        let total = cloud.total_bill(now);
        assert_eq!(total, Cost::from_dollars(0.08925 + 0.1323));
        assert_eq!(cloud.launch_count(), 2);
    }

    #[test]
    fn retiring_records_is_invisible_to_the_report_views() {
        // Two providers walk the same lifecycle; one retires records as
        // terminations land. Every report-facing view must agree bit
        // for bit, including under a dynamic price schedule.
        let (mut keep, mut rng_a) = nominal_cloud();
        let (mut prune, mut rng_b) = nominal_cloud();
        let steps = vec![(SimTime::from_secs(1800), 2.0)];
        keep.set_price_schedule(steps.clone());
        prune.set_price_schedule(steps);
        let ty = keep.catalog().by_name("c7i.large").unwrap().id;
        let mut ids = Vec::new();
        for k in 0..4u64 {
            let req = ProvisionRequest {
                type_id: ty,
                at: SimTime::from_secs(600 * k),
            };
            let a = keep.provision(req, &mut rng_a).unwrap();
            let b = prune.provision(req, &mut rng_b).unwrap();
            assert_eq!(a, b);
            ids.push(a);
        }
        // Terminate out of id order; retire as each termination lands.
        for &pos in &[3usize, 1, 2] {
            let at = SimTime::from_secs(2000 + 700 * pos as u64);
            keep.terminate(ids[pos], at).unwrap();
            prune.terminate(ids[pos], at).unwrap();
            assert!(prune.retire_instance(ids[pos]));
        }
        // ids[0] stays live; retiring a live record is refused.
        assert!(!prune.retire_instance(ids[0]));
        let end = SimTime::from_secs(9000);
        keep.terminate(ids[0], end).unwrap();
        prune.terminate(ids[0], end).unwrap();
        assert_eq!(keep.total_bill(end), prune.total_bill(end));
        assert_eq!(keep.max_terminated_at(), prune.max_terminated_at());
        assert_eq!(keep.uptime_rows(end), prune.uptime_rows(end));
        assert_eq!(keep.launch_count(), prune.launch_count());
        assert_eq!(prune.instances().count(), 1);
        assert_eq!(keep.instances().count(), 4);
    }

    #[test]
    fn unknown_type_is_rejected() {
        let (mut cloud, mut rng) = nominal_cloud();
        let err = cloud
            .provision(
                ProvisionRequest {
                    type_id: InstanceTypeId(99),
                    at: SimTime::ZERO,
                },
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, EvaError::UnknownInstanceType(_)));
    }

    #[test]
    fn live_instances_excludes_terminated() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("c7i.large").unwrap().id;
        let a = cloud
            .provision(
                ProvisionRequest {
                    type_id: ty,
                    at: SimTime::ZERO,
                },
                &mut rng,
            )
            .unwrap();
        let _b = cloud
            .provision(
                ProvisionRequest {
                    type_id: ty,
                    at: SimTime::ZERO,
                },
                &mut rng,
            )
            .unwrap();
        cloud.terminate(a, SimTime::from_secs(500)).unwrap();
        let live: Vec<_> = cloud.live_instances(SimTime::from_secs(1000)).collect();
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn pool_limit_rejects_at_capacity_and_frees_on_terminate() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("c7i.large").unwrap().id;
        cloud.set_pool_limit(Some(2));
        let req = |at| ProvisionRequest { type_id: ty, at };
        let a = cloud.provision(req(SimTime::ZERO), &mut rng).unwrap();
        let _b = cloud.provision(req(SimTime::ZERO), &mut rng).unwrap();
        assert_eq!(cloud.free_capacity(SimTime::ZERO), Some(0));
        let err = cloud.provision(req(SimTime::from_secs(10)), &mut rng).unwrap_err();
        assert!(matches!(err, EvaError::ProvisioningFailed { .. }));
        // Termination frees a slot.
        cloud.terminate(a, SimTime::from_secs(100)).unwrap();
        assert_eq!(cloud.free_capacity(SimTime::from_secs(100)), Some(1));
        assert!(cloud.provision(req(SimTime::from_secs(100)), &mut rng).is_ok());
    }

    #[test]
    fn capacity_shock_below_live_count_saturates_at_zero() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("c7i.large").unwrap().id;
        for _ in 0..3 {
            cloud
                .provision(
                    ProvisionRequest {
                        type_id: ty,
                        at: SimTime::ZERO,
                    },
                    &mut rng,
                )
                .unwrap();
        }
        // A shock caps the pool below what is already live: free capacity
        // must clamp to zero (never underflow) and the survivors live on.
        cloud.set_pool_limit(Some(1));
        assert_eq!(cloud.free_capacity(SimTime::ZERO), Some(0));
        assert_eq!(cloud.live_count(SimTime::ZERO), 3);
        assert_eq!(cloud.free_capacity(SimTime::ZERO).unwrap(), 0u64);
        // Lifting the cap restores unlimited provisioning.
        cloud.set_pool_limit(None);
        assert_eq!(cloud.free_capacity(SimTime::ZERO), None);
    }

    #[test]
    fn price_steps_segment_the_bill() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("p3.2xlarge").unwrap().id;
        let id = cloud
            .provision(
                ProvisionRequest {
                    type_id: ty,
                    at: SimTime::ZERO,
                },
                &mut rng,
            )
            .unwrap();
        let billed_from = cloud.instance(id).unwrap().billed_from;
        // Double the price one hour into billing.
        cloud.set_price_schedule(vec![(billed_from + SimDuration::from_hours_f64(1.0), 2.0)]);
        let now = billed_from + SimDuration::from_hours_f64(2.0);
        let bill = cloud.instance_bill(id, now).unwrap();
        // 1 h at $3.06 + 1 h at $6.12.
        assert!((bill.as_dollars() - (3.06 + 6.12)).abs() < 1e-9, "{bill:?}");
        // An empty schedule restores the exact static-price path.
        cloud.set_price_schedule(Vec::new());
        assert_eq!(
            cloud.instance_bill(id, now).unwrap(),
            Cost::from_dollars(2.0 * 3.06)
        );
    }

    #[test]
    fn uptime_of_acquiring_instance_is_zero() {
        let (mut cloud, mut rng) = nominal_cloud();
        let ty = cloud.catalog().by_name("c7i.large").unwrap().id;
        let id = cloud
            .provision(
                ProvisionRequest {
                    type_id: ty,
                    at: SimTime::from_secs(50),
                },
                &mut rng,
            )
            .unwrap();
        let inst = cloud.instance(id).unwrap();
        assert_eq!(inst.uptime(SimTime::from_secs(60)), SimDuration::ZERO);
    }
}
