//! Cloud substrate for the Eva reproduction.
//!
//! This crate models everything the paper takes from AWS EC2 and S3:
//!
//! * the **instance-type catalog** — the 21 types across the P3 (GPU),
//!   C7i (compute-optimized), and R7i (memory-optimized) families used in
//!   §6.1, with their real capacities and on-demand prices;
//! * the **provisioning delay model** — instance acquisition and setup
//!   delays with the ranges and means measured in Table 1;
//! * **availability zones** with bounded capacity and the retry-on-failure
//!   behaviour of Eva's Provisioner;
//! * a **simulated cloud provider** with the full instance lifecycle
//!   (acquiring → setting-up → running → terminated) and per-second
//!   billing; and
//! * a **global storage** stub standing in for the S3 bucket every worker
//!   mounts for datasets and checkpoints.
//!
//! The scheduler crates depend only on the catalog; the simulator and the
//! task runtime drive the provider.

pub mod catalog;
pub mod delays;
pub mod provider;
pub mod storage;
pub mod zones;

pub use catalog::{Catalog, InstanceFamily, InstanceType};
pub use delays::{DelayModel, DelaySample, FidelityMode};
pub use provider::{CloudProvider, Instance, InstanceState, ProvisionRequest};
pub use storage::GlobalStorage;
pub use zones::{ZoneConfig, ZoneSet};
