//! The instance-type catalog.
//!
//! §6.1 of the paper evaluates over 21 instance types drawn from three AWS
//! EC2 families: P3 (GPU), C7i (compute-optimized), and R7i (memory-
//! optimized). [`Catalog::aws_eval_2025`] reproduces that catalog with the
//! published capacities and us-east-1 on-demand prices. Custom catalogs
//! (e.g. Table 3's four pedagogical types) can be built with
//! [`Catalog::from_types`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use eva_types::{Cost, DemandSpec, InstanceTypeId, ResourceVector};

/// The family an instance type belongs to.
///
/// Families matter because a task's resource demands can differ per family
/// (Table 7's parenthesized CPU demands on C7i/R7i) and because the ghost
/// type of the ILP formulation (§4.1) is not a real family at all.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstanceFamily {
    /// GPU instances (NVIDIA V100).
    P3,
    /// Compute-optimized instances.
    C7i,
    /// Memory-optimized instances.
    R7i,
    /// A named family outside the built-in three.
    Other(String),
}

impl InstanceFamily {
    /// The lowercase family name used as the key in [`DemandSpec`]
    /// per-family overrides.
    pub fn name(&self) -> &str {
        match self {
            InstanceFamily::P3 => "p3",
            InstanceFamily::C7i => "c7i",
            InstanceFamily::R7i => "r7i",
            InstanceFamily::Other(name) => name,
        }
    }
}

impl fmt::Display for InstanceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One instance type: a capacity vector and an hourly price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Stable identifier within the owning catalog.
    pub id: InstanceTypeId,
    /// Marketing name, e.g. `p3.2xlarge`.
    pub name: String,
    /// The family this type belongs to.
    pub family: InstanceFamily,
    /// Resource capacity (`Q_k^r` in §4.1).
    pub capacity: ResourceVector,
    /// Hourly on-demand cost (`C_k` in §4.1).
    pub hourly_cost: Cost,
}

impl InstanceType {
    /// True if a task with the given demand spec fits on an *empty*
    /// instance of this type (demand resolved against this type's family).
    pub fn can_host(&self, demand: &DemandSpec) -> bool {
        demand
            .for_family(self.family.name())
            .fits_within(&self.capacity)
    }

    /// The demand a task places on this type (family-resolved).
    pub fn demand_of(&self, demand: &DemandSpec) -> ResourceVector {
        demand.for_family(self.family.name())
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.capacity, self.hourly_cost)
    }
}

/// An immutable set of instance types.
///
/// # Examples
///
/// ```
/// use eva_cloud::Catalog;
///
/// let catalog = Catalog::aws_eval_2025();
/// assert_eq!(catalog.len(), 21);
/// let cheapest_gpu = catalog
///     .types()
///     .filter(|t| t.capacity.gpu >= 1)
///     .min_by_key(|t| t.hourly_cost)
///     .unwrap();
/// assert_eq!(cheapest_gpu.name, "p3.2xlarge");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    types: Vec<InstanceType>,
    by_name: BTreeMap<String, InstanceTypeId>,
}

impl Catalog {
    /// Builds a catalog from a list of `(name, family, capacity, $/hr)`
    /// tuples. Ids are assigned in order.
    pub fn from_types(
        specs: impl IntoIterator<Item = (String, InstanceFamily, ResourceVector, f64)>,
    ) -> Self {
        let mut types = Vec::new();
        let mut by_name = BTreeMap::new();
        for (idx, (name, family, capacity, dollars)) in specs.into_iter().enumerate() {
            let id = InstanceTypeId(idx as u32);
            by_name.insert(name.clone(), id);
            types.push(InstanceType {
                id,
                name,
                family,
                capacity,
                hourly_cost: Cost::from_dollars_per_hour(dollars),
            });
        }
        Catalog { types, by_name }
    }

    /// The 21-type catalog of §6.1: 3 P3 sizes, 9 C7i sizes, 9 R7i sizes,
    /// with us-east-1 on-demand pricing.
    pub fn aws_eval_2025() -> Self {
        use InstanceFamily::{C7i, R7i, P3};
        let gb = |g: u64| g * 1024;
        let specs: Vec<(String, InstanceFamily, ResourceVector, f64)> = vec![
            // P3: 1 GPU : 8 vCPU : 61 GiB per unit; V100 GPUs.
            (
                "p3.2xlarge".into(),
                P3,
                ResourceVector::new(1, 8, gb(61)),
                3.06,
            ),
            (
                "p3.8xlarge".into(),
                P3,
                ResourceVector::new(4, 32, gb(244)),
                12.24,
            ),
            (
                "p3.16xlarge".into(),
                P3,
                ResourceVector::new(8, 64, gb(488)),
                24.48,
            ),
            // C7i: 2 GiB per vCPU.
            (
                "c7i.large".into(),
                C7i,
                ResourceVector::new(0, 2, gb(4)),
                0.08925,
            ),
            (
                "c7i.xlarge".into(),
                C7i,
                ResourceVector::new(0, 4, gb(8)),
                0.1785,
            ),
            (
                "c7i.2xlarge".into(),
                C7i,
                ResourceVector::new(0, 8, gb(16)),
                0.357,
            ),
            (
                "c7i.4xlarge".into(),
                C7i,
                ResourceVector::new(0, 16, gb(32)),
                0.714,
            ),
            (
                "c7i.8xlarge".into(),
                C7i,
                ResourceVector::new(0, 32, gb(64)),
                1.428,
            ),
            (
                "c7i.12xlarge".into(),
                C7i,
                ResourceVector::new(0, 48, gb(96)),
                2.142,
            ),
            (
                "c7i.16xlarge".into(),
                C7i,
                ResourceVector::new(0, 64, gb(128)),
                2.856,
            ),
            (
                "c7i.24xlarge".into(),
                C7i,
                ResourceVector::new(0, 96, gb(192)),
                4.284,
            ),
            (
                "c7i.48xlarge".into(),
                C7i,
                ResourceVector::new(0, 192, gb(384)),
                8.568,
            ),
            // R7i: 8 GiB per vCPU.
            (
                "r7i.large".into(),
                R7i,
                ResourceVector::new(0, 2, gb(16)),
                0.1323,
            ),
            (
                "r7i.xlarge".into(),
                R7i,
                ResourceVector::new(0, 4, gb(32)),
                0.2646,
            ),
            (
                "r7i.2xlarge".into(),
                R7i,
                ResourceVector::new(0, 8, gb(64)),
                0.5292,
            ),
            (
                "r7i.4xlarge".into(),
                R7i,
                ResourceVector::new(0, 16, gb(128)),
                1.0584,
            ),
            (
                "r7i.8xlarge".into(),
                R7i,
                ResourceVector::new(0, 32, gb(256)),
                2.1168,
            ),
            (
                "r7i.12xlarge".into(),
                R7i,
                ResourceVector::new(0, 48, gb(384)),
                3.1752,
            ),
            (
                "r7i.16xlarge".into(),
                R7i,
                ResourceVector::new(0, 64, gb(512)),
                4.2336,
            ),
            (
                "r7i.24xlarge".into(),
                R7i,
                ResourceVector::new(0, 96, gb(768)),
                6.3504,
            ),
            (
                "r7i.48xlarge".into(),
                R7i,
                ResourceVector::new(0, 192, gb(1536)),
                12.7008,
            ),
        ];
        Catalog::from_types(specs)
    }

    /// The four pedagogical instance types of Table 3, used by the paper's
    /// worked example in §4.2 and by this repo's unit tests.
    pub fn table3_example() -> Self {
        use InstanceFamily::Other;
        let specs: Vec<(String, InstanceFamily, ResourceVector, f64)> = vec![
            (
                "it1".into(),
                Other("ex".into()),
                ResourceVector::with_ram_gb(4, 16, 244),
                12.0,
            ),
            (
                "it2".into(),
                Other("ex".into()),
                ResourceVector::with_ram_gb(1, 4, 61),
                3.0,
            ),
            (
                "it3".into(),
                Other("ex".into()),
                ResourceVector::with_ram_gb(0, 8, 32),
                0.8,
            ),
            (
                "it4".into(),
                Other("ex".into()),
                ResourceVector::with_ram_gb(0, 4, 16),
                0.4,
            ),
        ];
        Catalog::from_types(specs)
    }

    /// Number of types in the catalog.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True when the catalog has no types.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates over all types.
    pub fn types(&self) -> impl Iterator<Item = &InstanceType> {
        self.types.iter()
    }

    /// Looks up a type by id.
    pub fn get(&self, id: InstanceTypeId) -> Option<&InstanceType> {
        self.types.get(id.0 as usize).filter(|t| t.id == id)
    }

    /// Looks up a type by marketing name.
    pub fn by_name(&self, name: &str) -> Option<&InstanceType> {
        self.by_name.get(name).and_then(|id| self.get(*id))
    }

    /// Types sorted by hourly cost, descending — the iteration order of
    /// Algorithm 1 line 2.
    pub fn types_by_cost_desc(&self) -> Vec<&InstanceType> {
        let mut sorted: Vec<&InstanceType> = self.types.iter().collect();
        // Stable tie-break on id so the algorithm is deterministic.
        sorted.sort_by(|a, b| b.hourly_cost.cmp(&a.hourly_cost).then(a.id.cmp(&b.id)));
        sorted
    }

    /// The cheapest type that can host the given demand on a standalone
    /// instance, i.e. the *reservation-price type* of §4.2.
    pub fn cheapest_fit(&self, demand: &DemandSpec) -> Option<&InstanceType> {
        self.types
            .iter()
            .filter(|t| t.can_host(demand))
            .min_by(|a, b| a.hourly_cost.cmp(&b.hourly_cost).then(a.id.cmp(&b.id)))
    }

    /// The cheapest type that can host the *sum* of the given demands
    /// (resolved per family). Used by the Owl baseline for pairing.
    pub fn cheapest_fit_all(&self, demands: &[&DemandSpec]) -> Option<&InstanceType> {
        self.types
            .iter()
            .filter(|t| {
                let mut total = ResourceVector::ZERO;
                for d in demands {
                    total += t.demand_of(d);
                }
                total.fits_within(&t.capacity)
            })
            .min_by(|a, b| a.hourly_cost.cmp(&b.hourly_cost).then(a.id.cmp(&b.id)))
    }

    /// The largest capacity vector across the catalog (component-wise).
    pub fn max_capacity(&self) -> ResourceVector {
        self.types
            .iter()
            .fold(ResourceVector::ZERO, |acc, t| acc.max(&t.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_types::DemandSpec;

    #[test]
    fn aws_catalog_has_21_types_in_three_families() {
        let c = Catalog::aws_eval_2025();
        assert_eq!(c.len(), 21);
        let p3 = c.types().filter(|t| t.family == InstanceFamily::P3).count();
        let c7i = c
            .types()
            .filter(|t| t.family == InstanceFamily::C7i)
            .count();
        let r7i = c
            .types()
            .filter(|t| t.family == InstanceFamily::R7i)
            .count();
        assert_eq!((p3, c7i, r7i), (3, 9, 9));
    }

    #[test]
    fn lookup_by_name_and_id() {
        let c = Catalog::aws_eval_2025();
        let t = c.by_name("p3.8xlarge").unwrap();
        assert_eq!(t.capacity, ResourceVector::with_ram_gb(4, 32, 244));
        assert_eq!(c.get(t.id).unwrap().name, "p3.8xlarge");
        assert!(c.by_name("m5.large").is_none());
        assert!(c.get(InstanceTypeId(999)).is_none());
    }

    #[test]
    fn cost_desc_order_starts_with_biggest_gpu_box() {
        let c = Catalog::aws_eval_2025();
        let sorted = c.types_by_cost_desc();
        assert_eq!(sorted[0].name, "p3.16xlarge");
        assert_eq!(sorted.last().unwrap().name, "c7i.large");
        for w in sorted.windows(2) {
            assert!(w[0].hourly_cost >= w[1].hourly_cost);
        }
    }

    #[test]
    fn cheapest_fit_is_reservation_price_type() {
        let c = Catalog::aws_eval_2025();
        // A 1-GPU task must land on p3.2xlarge.
        let d = DemandSpec::uniform(ResourceVector::with_ram_gb(1, 4, 24));
        assert_eq!(c.cheapest_fit(&d).unwrap().name, "p3.2xlarge");
        // A pure-CPU 6-vCPU task: c7i.2xlarge ($0.357) is the cheapest fit
        // among types with ≥6 vCPU and ≥8 GB.
        let d = DemandSpec::uniform(ResourceVector::with_ram_gb(0, 6, 8));
        assert_eq!(c.cheapest_fit(&d).unwrap().name, "c7i.2xlarge");
        // Memory-heavy tasks go to R7i (100 GB needs the 128 GB 4xlarge).
        let d = DemandSpec::uniform(ResourceVector::with_ram_gb(0, 4, 100));
        assert_eq!(c.cheapest_fit(&d).unwrap().name, "r7i.4xlarge");
        // Impossible demand.
        let d = DemandSpec::uniform(ResourceVector::with_ram_gb(16, 4, 24));
        assert!(c.cheapest_fit(&d).is_none());
    }

    #[test]
    fn cheapest_fit_respects_family_overrides() {
        let c = Catalog::aws_eval_2025();
        // GCN from Table 7: 12 CPUs on P3 but only 6 on C7i/R7i.
        let d = DemandSpec::uniform(ResourceVector::with_ram_gb(0, 12, 40))
            .with_family_override("c7i", ResourceVector::with_ram_gb(0, 6, 40))
            .with_family_override("r7i", ResourceVector::with_ram_gb(0, 6, 40));
        // r7i.2xlarge (8 vCPU, 64 GB, $0.5292) fits the 6-CPU/40GB form and
        // beats every C7i with ≥40 GB (c7i.4xlarge has only 32 GB).
        assert_eq!(c.cheapest_fit(&d).unwrap().name, "r7i.2xlarge");
    }

    #[test]
    fn table3_reservation_prices_match_paper() {
        let c = Catalog::table3_example();
        let tasks = [
            (ResourceVector::with_ram_gb(2, 8, 24), 12.0),
            (ResourceVector::with_ram_gb(1, 4, 10), 3.0),
            (ResourceVector::with_ram_gb(0, 6, 20), 0.8),
            (ResourceVector::with_ram_gb(0, 4, 12), 0.4),
        ];
        for (demand, rp) in tasks {
            let d = DemandSpec::uniform(demand);
            let t = c.cheapest_fit(&d).unwrap();
            assert_eq!(t.hourly_cost, Cost::from_dollars(rp), "demand {demand}");
        }
    }

    #[test]
    fn cheapest_fit_all_pairs() {
        let c = Catalog::table3_example();
        let d2 = DemandSpec::uniform(ResourceVector::with_ram_gb(1, 4, 10));
        let d4 = DemandSpec::uniform(ResourceVector::with_ram_gb(0, 4, 12));
        // τ2 + τ4 need [1, 8, 22]; it2 only has 4 CPUs so it1 is required.
        let t = c.cheapest_fit_all(&[&d2, &d4]).unwrap();
        assert_eq!(t.name, "it1");
    }

    #[test]
    fn max_capacity_covers_catalog() {
        let c = Catalog::aws_eval_2025();
        let m = c.max_capacity();
        assert_eq!(m.gpu, 8);
        assert_eq!(m.cpu, 192);
        assert_eq!(m.ram_mb, 1536 * 1024);
    }

    #[test]
    fn empty_catalog() {
        let c = Catalog::from_types(Vec::new());
        assert!(c.is_empty());
        assert!(c
            .cheapest_fit(&DemandSpec::uniform(ResourceVector::ZERO))
            .is_none());
    }
}
