//! Availability zones with bounded per-type capacity.
//!
//! The paper's Provisioner retries in other availability zones when the
//! default zone cannot supply an instance type (§6.1). This module models a
//! region as an ordered list of zones, each with optional per-type instance
//! quotas, and implements that retry loop.

use std::collections::HashMap;

use eva_types::{EvaError, InstanceTypeId, Result};

/// Capacity configuration for one availability zone.
#[derive(Debug, Clone, Default)]
pub struct ZoneConfig {
    /// Zone name, e.g. `us-east-1a`.
    pub name: String,
    /// Maximum concurrently running instances per type. Types absent from
    /// the map are unlimited.
    pub quotas: HashMap<InstanceTypeId, u32>,
}

impl ZoneConfig {
    /// An unlimited zone.
    pub fn unlimited(name: &str) -> Self {
        ZoneConfig {
            name: name.to_string(),
            quotas: HashMap::new(),
        }
    }

    /// Sets a quota for an instance type (builder style).
    pub fn with_quota(mut self, ty: InstanceTypeId, limit: u32) -> Self {
        self.quotas.insert(ty, limit);
        self
    }
}

/// Live per-zone usage counters.
#[derive(Debug, Clone, Default)]
struct ZoneUsage {
    in_use: HashMap<InstanceTypeId, u32>,
}

/// An ordered set of availability zones with allocation and release.
///
/// # Examples
///
/// ```
/// use eva_cloud::{ZoneConfig, ZoneSet};
/// use eva_types::InstanceTypeId;
///
/// let ty = InstanceTypeId(0);
/// let mut zones = ZoneSet::new(vec![
///     ZoneConfig::unlimited("us-east-1a").with_quota(ty, 1),
///     ZoneConfig::unlimited("us-east-1b"),
/// ]);
/// // First allocation lands in the default zone, the second falls over.
/// assert_eq!(zones.allocate(ty).unwrap(), "us-east-1a");
/// assert_eq!(zones.allocate(ty).unwrap(), "us-east-1b");
/// ```
#[derive(Debug, Clone)]
pub struct ZoneSet {
    configs: Vec<ZoneConfig>,
    usage: Vec<ZoneUsage>,
    /// Total failed placement attempts (for telemetry).
    retries: u64,
}

impl ZoneSet {
    /// Builds a zone set; the first zone is the default.
    pub fn new(configs: Vec<ZoneConfig>) -> Self {
        let usage = configs.iter().map(|_| ZoneUsage::default()).collect();
        ZoneSet {
            configs,
            usage,
            retries: 0,
        }
    }

    /// A single unlimited zone — the common simulation setup.
    pub fn single_unlimited() -> Self {
        ZoneSet::new(vec![ZoneConfig::unlimited("us-east-1a")])
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when there are no zones.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Cumulative count of within-region retries caused by exhausted zones.
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    /// Tries the default zone first, then each subsequent zone, reproducing
    /// the Provisioner retry behaviour. Returns the name of the zone that
    /// accepted the instance.
    pub fn allocate(&mut self, ty: InstanceTypeId) -> Result<String> {
        for (idx, cfg) in self.configs.iter().enumerate() {
            let used = self.usage[idx].in_use.get(&ty).copied().unwrap_or(0);
            let quota = cfg.quotas.get(&ty).copied();
            let has_room = quota.is_none_or(|q| used < q);
            if has_room {
                *self.usage[idx].in_use.entry(ty).or_insert(0) += 1;
                return Ok(cfg.name.clone());
            }
            self.retries += 1;
        }
        Err(EvaError::ProvisioningFailed {
            instance_type: ty,
            reason: "all availability zones exhausted".into(),
        })
    }

    /// Releases one instance of `ty` previously placed in `zone`.
    pub fn release(&mut self, ty: InstanceTypeId, zone: &str) {
        if let Some(idx) = self.configs.iter().position(|c| c.name == zone) {
            if let Some(count) = self.usage[idx].in_use.get_mut(&ty) {
                *count = count.saturating_sub(1);
            }
        }
    }

    /// Currently running instances of `ty` across all zones.
    pub fn in_use(&self, ty: InstanceTypeId) -> u32 {
        self.usage
            .iter()
            .map(|u| u.in_use.get(&ty).copied().unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_zone_always_allocates() {
        let mut zones = ZoneSet::single_unlimited();
        let ty = InstanceTypeId(3);
        for _ in 0..100 {
            assert!(zones.allocate(ty).is_ok());
        }
        assert_eq!(zones.in_use(ty), 100);
        assert_eq!(zones.retry_count(), 0);
    }

    #[test]
    fn quota_exhaustion_falls_over_to_next_zone() {
        let ty = InstanceTypeId(0);
        let mut zones = ZoneSet::new(vec![
            ZoneConfig::unlimited("a").with_quota(ty, 2),
            ZoneConfig::unlimited("b").with_quota(ty, 1),
        ]);
        assert_eq!(zones.allocate(ty).unwrap(), "a");
        assert_eq!(zones.allocate(ty).unwrap(), "a");
        assert_eq!(zones.allocate(ty).unwrap(), "b");
        let err = zones.allocate(ty).unwrap_err();
        assert!(matches!(err, EvaError::ProvisioningFailed { .. }));
        assert!(zones.retry_count() >= 1);
    }

    #[test]
    fn release_frees_quota() {
        let ty = InstanceTypeId(0);
        let mut zones = ZoneSet::new(vec![ZoneConfig::unlimited("a").with_quota(ty, 1)]);
        let zone = zones.allocate(ty).unwrap();
        assert!(zones.allocate(ty).is_err());
        zones.release(ty, &zone);
        assert!(zones.allocate(ty).is_ok());
    }

    #[test]
    fn release_of_unknown_zone_is_a_no_op() {
        let ty = InstanceTypeId(0);
        let mut zones = ZoneSet::single_unlimited();
        zones.release(ty, "nonexistent");
        assert_eq!(zones.in_use(ty), 0);
    }

    #[test]
    fn quotas_are_per_type() {
        let a = InstanceTypeId(0);
        let b = InstanceTypeId(1);
        let mut zones = ZoneSet::new(vec![ZoneConfig::unlimited("z").with_quota(a, 1)]);
        assert!(zones.allocate(a).is_ok());
        assert!(zones.allocate(a).is_err());
        // Type b is unconstrained.
        for _ in 0..10 {
            assert!(zones.allocate(b).is_ok());
        }
    }
}
