//! Provisioning delay model (Table 1).
//!
//! The paper measured, across 126 EC2 instances and 120 job migrations:
//!
//! | Delay type           | Range (sec) | Average (sec) |
//! |----------------------|-------------|---------------|
//! | Instance acquisition | 6 – 83      | 19            |
//! | Instance setup       | 140 – 251   | 190           |
//! | Job checkpointing    | 2 – 30      | 8             |
//! | Job launching        | 1 – 160     | 47            |
//!
//! Checkpoint/launch delays are per-workload properties (Table 7) carried on
//! `TaskSpec`; this module models the *instance-side* delays. Two fidelity
//! modes exist so the simulator-fidelity experiment (Table 12) can contrast
//! stochastic and nominal behaviour.

use rand::distributions::Distribution;
use rand::Rng;

use eva_types::SimDuration;

/// How delays are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityMode {
    /// Every delay is its measured mean — fully deterministic.
    Nominal,
    /// Delays are drawn from a truncated skewed distribution matching the
    /// measured range and mean.
    Stochastic,
}

/// One sampled set of instance-side delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelaySample {
    /// Time from the provision request until the cloud hands over the
    /// instance (billing starts when this completes).
    pub acquisition: SimDuration,
    /// Time to set the instance up (pull images, mount storage, start the
    /// worker). Billed but unusable.
    pub setup: SimDuration,
}

impl DelaySample {
    /// Total delay until the instance can run tasks.
    pub fn total(&self) -> SimDuration {
        self.acquisition + self.setup
    }
}

/// A truncated distribution that matches a (min, mean, max) triple.
///
/// We use a Beta-like two-sided power distribution: draw `u ∈ [0,1]`,
/// shape it so the expectation lands on the requested mean, then scale to
/// `[min, max]`. This reproduces Table 1's skew (mean far below midpoint
/// for acquisition, near midpoint for setup) without fitting machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RangeMeanDist {
    min_secs: f64,
    max_secs: f64,
    /// Power `k` such that `E[u^k] = (mean - min) / (max - min)`.
    power: f64,
}

impl RangeMeanDist {
    fn new(min_secs: f64, mean_secs: f64, max_secs: f64) -> Self {
        assert!(min_secs <= mean_secs && mean_secs <= max_secs);
        let target = if max_secs > min_secs {
            (mean_secs - min_secs) / (max_secs - min_secs)
        } else {
            0.5
        };
        // For u ~ U(0,1), E[u^k] = 1/(k+1); solve 1/(k+1) = target.
        let target = target.clamp(0.01, 0.99);
        let power = 1.0 / target - 1.0;
        RangeMeanDist {
            min_secs,
            max_secs,
            power,
        }
    }

    fn mean(&self) -> SimDuration {
        let target = 1.0 / (self.power + 1.0);
        SimDuration::from_secs_f64(self.min_secs + target * (self.max_secs - self.min_secs))
    }
}

impl Distribution<SimDuration> for RangeMeanDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let u: f64 = rng.gen::<f64>().powf(self.power);
        SimDuration::from_secs_f64(self.min_secs + u * (self.max_secs - self.min_secs))
    }
}

/// The Table 1 delay model.
///
/// # Examples
///
/// ```
/// use eva_cloud::{DelayModel, FidelityMode};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = DelayModel::table1(FidelityMode::Nominal);
/// let mut rng = StdRng::seed_from_u64(0);
/// let s = model.sample(&mut rng);
/// assert_eq!(s.acquisition.as_secs(), 19);
/// assert_eq!(s.setup.as_secs(), 190);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    mode: FidelityMode,
    acquisition: RangeMeanDist,
    setup: RangeMeanDist,
    /// Multiplier applied to sampled delays (sweep knob; 1.0 = measured).
    scale: f64,
}

impl DelayModel {
    /// The measured Table 1 model.
    pub fn table1(mode: FidelityMode) -> Self {
        DelayModel {
            mode,
            acquisition: RangeMeanDist::new(6.0, 19.0, 83.0),
            setup: RangeMeanDist::new(140.0, 190.0, 251.0),
            scale: 1.0,
        }
    }

    /// A model with all delays forced to zero (useful in unit tests).
    pub fn zero() -> Self {
        DelayModel {
            mode: FidelityMode::Nominal,
            acquisition: RangeMeanDist::new(0.0, 0.0, 0.0),
            setup: RangeMeanDist::new(0.0, 0.0, 0.0),
            scale: 1.0,
        }
    }

    /// Returns a copy with all sampled delays multiplied by `scale`.
    pub fn scaled(&self, scale: f64) -> Self {
        let mut m = self.clone();
        m.scale = scale.max(0.0);
        m
    }

    /// The fidelity mode in effect.
    pub fn mode(&self) -> FidelityMode {
        self.mode
    }

    /// Samples instance-side delays.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> DelaySample {
        let (acq, setup) = match self.mode {
            FidelityMode::Nominal => (self.acquisition.mean(), self.setup.mean()),
            FidelityMode::Stochastic => (self.acquisition.sample(rng), self.setup.sample(rng)),
        };
        DelaySample {
            acquisition: acq.scale(self.scale),
            setup: setup.scale(self.scale),
        }
    }

    /// Mean acquisition delay (after scaling).
    pub fn mean_acquisition(&self) -> SimDuration {
        self.acquisition.mean().scale(self.scale)
    }

    /// Mean setup delay (after scaling).
    pub fn mean_setup(&self) -> SimDuration {
        self.setup.mean().scale(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_mode_returns_table1_means() {
        let m = DelayModel::table1(FidelityMode::Nominal);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let s = m.sample(&mut rng);
            assert_eq!(s.acquisition.as_secs(), 19);
            assert_eq!(s.setup.as_secs(), 190);
            assert_eq!(s.total().as_secs(), 209);
        }
    }

    #[test]
    fn stochastic_mode_stays_in_measured_ranges() {
        let m = DelayModel::table1(FidelityMode::Stochastic);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2_000 {
            let s = m.sample(&mut rng);
            let a = s.acquisition.as_secs_f64();
            let u = s.setup.as_secs_f64();
            assert!((6.0..=83.0).contains(&a), "acquisition {a}");
            assert!((140.0..=251.0).contains(&u), "setup {u}");
        }
    }

    #[test]
    fn stochastic_mean_approximates_table1() {
        let m = DelayModel::table1(FidelityMode::Stochastic);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut acq_sum = 0.0;
        let mut setup_sum = 0.0;
        for _ in 0..n {
            let s = m.sample(&mut rng);
            acq_sum += s.acquisition.as_secs_f64();
            setup_sum += s.setup.as_secs_f64();
        }
        let acq_mean = acq_sum / n as f64;
        let setup_mean = setup_sum / n as f64;
        assert!((acq_mean - 19.0).abs() < 1.5, "acquisition mean {acq_mean}");
        assert!((setup_mean - 190.0).abs() < 3.0, "setup mean {setup_mean}");
    }

    #[test]
    fn scaling_multiplies_delays() {
        let m = DelayModel::table1(FidelityMode::Nominal).scaled(2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let s = m.sample(&mut rng);
        assert_eq!(s.acquisition.as_secs(), 38);
        assert_eq!(s.setup.as_secs(), 380);
        assert_eq!(m.mean_setup().as_secs(), 380);
    }

    #[test]
    fn zero_model_has_no_delay() {
        let m = DelayModel::zero();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(m.sample(&mut rng).total(), SimDuration::ZERO);
    }

    #[test]
    fn negative_scale_clamps_to_zero() {
        let m = DelayModel::table1(FidelityMode::Nominal).scaled(-1.0);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(m.sample(&mut rng).total(), SimDuration::ZERO);
    }
}
