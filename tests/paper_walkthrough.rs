//! Integration test: the paper's worked examples, end to end through the
//! public facade.

use eva::prelude::*;

fn task(job: u64, gpu: u32, cpu: u32, ram_gb: u64) -> TaskSnapshot {
    TaskSnapshot {
        id: TaskId::new(JobId(job), 0),
        workload: WorkloadKind(job as u32),
        demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
        checkpoint_delay: SimDuration::from_secs(2),
        launch_delay: SimDuration::from_secs(10),
        gang_size: 1,
        gang_coupled: false,
        assigned_to: None,
        remaining_hint: None,
    }
}

fn table3_tasks() -> Vec<TaskSnapshot> {
    vec![
        task(1, 2, 8, 24),
        task(2, 1, 4, 10),
        task(3, 0, 6, 20),
        task(4, 0, 4, 12),
    ]
}

#[test]
fn section_4_2_walkthrough_cost() {
    // τ1, τ2, τ4 pack onto it1; τ3 onto it3; total $12.80 vs $16.20.
    let catalog = Catalog::table3_example();
    let tasks = table3_tasks();
    let mut eva = EvaScheduler::new(EvaConfig::eva_rp());
    let ctx = SchedulerContext {
        now: SimTime::ZERO,
        catalog: &catalog,
        tasks: &tasks,
        instances: &[],
    };
    let plan = eva.plan(&ctx);
    let total: Cost = plan
        .assignments
        .iter()
        .filter_map(|a| match a.instance {
            eva::core::PlannedInstance::New(ty) => Some(catalog.get(ty).unwrap().hourly_cost),
            _ => None,
        })
        .sum();
    assert_eq!(total, Cost::from_dollars(12.8));
}

#[test]
fn section_4_3_tnrp_example() {
    use eva::core::{ReservationPrices, TnrpEvaluator};
    use eva::interference::ThroughputTable;

    let catalog = Catalog::table3_example();
    let tasks = table3_tasks();
    let prices = ReservationPrices::compute(&catalog, tasks.iter());
    let mut table = ThroughputTable::new(0.95);
    table.record(WorkloadKind(1), &[WorkloadKind(2)], 0.8);
    table.record(WorkloadKind(2), &[WorkloadKind(1)], 0.9);
    let eval = TnrpEvaluator::new(&table, &prices, true);
    let set = [&tasks[0], &tasks[1]];
    // $12 × 0.8 + $3 × 0.9 = $12.30 > $12 → cost-efficient.
    assert!(eval.is_cost_efficient(&set, Cost::from_dollars(12.0)));

    table.record(WorkloadKind(1), &[WorkloadKind(2)], 0.7);
    table.record(WorkloadKind(2), &[WorkloadKind(1)], 0.8);
    let eval = TnrpEvaluator::new(&table, &prices, true);
    // $12 × 0.7 + $3 × 0.8 = $10.80 < $12 → rejected.
    assert!(!eval.is_cost_efficient(&set, Cost::from_dollars(12.0)));
}

#[test]
fn dhat_closed_form_from_section_4_5() {
    use eva::core::EventRateEstimator;
    // D̂ = −1/(λ ln(1−p)); for λ = 2/hr and p = 0.5 this is 1/(2 ln 2).
    let est = EventRateEstimator::new(2.0, 0.5);
    let expected = 1.0 / (2.0 * std::f64::consts::LN_2);
    assert!((est.estimated_duration_hours() - expected).abs() < 1e-12);
}
