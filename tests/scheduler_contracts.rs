//! Contract tests every scheduler must satisfy: plans must be executable
//! (capacity-respecting, no duplicated tasks, terminate only untouched
//! instances) on randomized cluster states.

use proptest::prelude::*;

use eva::baselines::{
    NoPackingScheduler, OracleProfile, OwlScheduler, StratusScheduler, SynergyScheduler,
};
use eva::core::{InstanceSnapshot, PlannedInstance, TaskSnapshot};
use eva::prelude::*;

fn arb_state() -> impl Strategy<Value = (Vec<TaskSnapshot>, Vec<InstanceSnapshot>)> {
    let catalog = Catalog::aws_eval_2025();
    let n_types = catalog.len() as u32;
    (
        proptest::collection::vec((0u32..=2, 1u32..=16, 1u64..=128, 0u32..8), 1..16),
        proptest::collection::vec(0u32..n_types, 0..6),
    )
        .prop_map(move |(task_specs, instance_types)| {
            let catalog = Catalog::aws_eval_2025();
            let instances: Vec<InstanceSnapshot> = instance_types
                .into_iter()
                .enumerate()
                .map(|(i, ty)| InstanceSnapshot {
                    id: InstanceId(i as u64),
                    type_id: eva::types::InstanceTypeId(ty),
                })
                .collect();
            let mut tasks: Vec<TaskSnapshot> = task_specs
                .into_iter()
                .enumerate()
                .map(|(i, (gpu, cpu, ram_gb, workload))| TaskSnapshot {
                    id: TaskId::new(JobId(i as u64), 0),
                    workload: WorkloadKind(workload),
                    demand: DemandSpec::uniform(ResourceVector::with_ram_gb(gpu, cpu, ram_gb)),
                    checkpoint_delay: SimDuration::from_secs(2),
                    launch_delay: SimDuration::from_secs(10),
                    gang_size: 1,
                    gang_coupled: false,
                    assigned_to: None,
                    remaining_hint: Some(SimDuration::from_mins(30 + i as u64 * 13)),
                })
                .collect();
            // Assign a prefix of tasks onto instances where they fit.
            let mut used: Vec<ResourceVector> =
                instances.iter().map(|_| ResourceVector::ZERO).collect();
            for (i, task) in tasks.iter_mut().enumerate() {
                if instances.is_empty() || i % 3 == 0 {
                    continue; // Leave some pending.
                }
                let slot = i % instances.len();
                let ty = catalog.get(instances[slot].type_id).unwrap();
                let d = ty.demand_of(&task.demand);
                if let Some(total) = used[slot].checked_add(&d) {
                    if total.fits_within(&ty.capacity) {
                        used[slot] = total;
                        task.assigned_to = Some(instances[slot].id);
                    }
                }
            }
            (tasks, instances)
        })
}

fn check_plan(
    name: &str,
    plan: &eva::core::Plan,
    tasks: &[TaskSnapshot],
    instances: &[InstanceSnapshot],
) -> Result<(), TestCaseError> {
    let catalog = Catalog::aws_eval_2025();
    // No task appears twice.
    let mut seen = std::collections::BTreeSet::new();
    for a in &plan.assignments {
        for t in &a.tasks {
            prop_assert!(seen.insert(*t), "{name}: task {t} duplicated");
        }
    }
    // Capacity respected per planned instance.
    for a in &plan.assignments {
        let type_id = match a.instance {
            PlannedInstance::Existing(id) => {
                let inst = instances.iter().find(|i| i.id == id);
                prop_assert!(inst.is_some(), "{name}: unknown instance {id}");
                inst.unwrap().type_id
            }
            PlannedInstance::New(ty) => ty,
        };
        let ty = catalog.get(type_id).unwrap();
        let mut total = ResourceVector::ZERO;
        for tid in &a.tasks {
            let task = tasks.iter().find(|t| t.id == *tid).unwrap();
            total += ty.demand_of(&task.demand);
        }
        prop_assert!(
            total.fits_within(&ty.capacity),
            "{name}: overfull {} on {}",
            total,
            ty.name
        );
    }
    // Terminated instances receive no assignments.
    for id in &plan.terminate {
        let assigned = plan
            .assignments
            .iter()
            .any(|a| matches!(a.instance, PlannedInstance::Existing(i) if i == *id));
        prop_assert!(!assigned, "{name}: assigns to terminated {id}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_emit_executable_plans((tasks, instances) in arb_state()) {
        let catalog = Catalog::aws_eval_2025();
        let ctx = SchedulerContext {
            now: SimTime::from_secs(3600),
            catalog: &catalog,
            tasks: &tasks,
            instances: &instances,
        };
        let workloads = WorkloadCatalog::table7();
        let kinds: Vec<WorkloadKind> = workloads.iter().map(|w| w.kind).collect();
        let profile = OracleProfile::from_fn(&kinds, |_, _| 0.95);

        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(NoPackingScheduler::new()),
            Box::new(StratusScheduler::new()),
            Box::new(SynergyScheduler::new()),
            Box::new(OwlScheduler::new(profile)),
            Box::new(EvaScheduler::new(EvaConfig::eva())),
            Box::new(EvaScheduler::new(EvaConfig::without_partial())),
            Box::new(EvaScheduler::new(EvaConfig::without_full())),
        ];
        for sched in &mut schedulers {
            let plan = sched.plan(&ctx);
            check_plan(sched.name(), &plan, &tasks, &instances)?;
        }
    }
}
