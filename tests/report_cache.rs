//! Persistent report-cache correctness.
//!
//! (a) A second run of the same grid against a warm cache is 100 % hits
//!     and produces byte-identical JSON.
//! (b) A *different* experiment declaring overlapping cells (same trace
//!     content, schedulers, seeds) also hits — the cache is keyed by
//!     content, not by grid or binary.
//! (c) Bumping the code schema version, or mutating the trace, makes
//!     every entry miss.
//! (d) The fault axis is part of every fingerprint: a cached clean-run
//!     cell can never be replayed for a faulted cell, and intensity is
//!     part of the key, not just the regime.

use std::path::PathBuf;

use eva::prelude::*;
use eva_cloud::FidelityMode;
use eva_sim::cache::SCHEMA_VERSION;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eva-report-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn trace(seed: u64) -> Trace {
    AlibabaTraceConfig {
        num_jobs: 12,
        arrival_rate_per_hour: 6.0,
        durations: DurationModelChoice::Alibaba,
    }
    .generate(seed)
}

fn grid(trace: &Trace) -> SweepGrid {
    SweepGrid::new("cache-test", trace.clone())
        .schedulers_by_name(&["no-packing", "stratus"])
        .unwrap()
        .seeds(vec![1, 2])
        .fidelities(vec![FidelityMode::Nominal])
}

#[test]
fn warm_rerun_is_all_hits_and_byte_identical() {
    let dir = tmp_dir("warm");
    let trace = trace(5);
    let runner = SweepRunner::new(2).with_cache(ReportCache::new(&dir));

    let (first, s1) = runner.run_with_stats(&grid(&trace));
    assert_eq!(s1.executed, s1.unique, "cold cache simulates everything");
    assert_eq!(s1.cache_hits, 0);

    let (second, s2) = runner.run_with_stats(&grid(&trace));
    assert_eq!(s2.executed, 0, "warm cache simulates zero cells");
    assert_eq!(s2.cache_hits, s2.unique);
    assert!(s2.all_cached());
    assert_eq!(
        first.to_json_pretty(),
        second.to_json_pretty(),
        "cached reports must round-trip byte-identically"
    );

    // Thread count still cannot matter.
    let (third, _) = SweepRunner::new(8)
        .with_cache(ReportCache::new(&dir))
        .run_with_stats(&grid(&trace));
    assert_eq!(first.to_json_pretty(), third.to_json_pretty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overlapping_experiments_share_cells_across_grids() {
    let dir = tmp_dir("cross");
    let trace = trace(6);
    let runner = SweepRunner::new(2).with_cache(ReportCache::new(&dir));

    let (_, s1) = runner.run_with_stats(&grid(&trace));
    assert_eq!(s1.cache_hits, 0);

    // A different experiment: single seed, one extra scheduler, new grid
    // label — the (trace × no-packing/stratus × seed 1) cells recur.
    let other = SweepGrid::new("another-experiment", trace.clone())
        .schedulers_by_name(&["no-packing", "stratus", "owl"])
        .unwrap()
        .seeds(vec![1])
        .fidelities(vec![FidelityMode::Nominal]);
    let (result, s2) = runner.run_with_stats(&other);
    assert_eq!(s2.cache_hits, 2, "no-packing + stratus cells recur");
    assert_eq!(s2.executed, 1, "only owl is new work");

    // Cached fan-out must equal a direct cold run of the same grid.
    let cold = SweepRunner::new(2).run(&other);
    assert_eq!(result.to_json_pretty(), cold.to_json_pretty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_axis_is_part_of_every_cell_key() {
    let dir = tmp_dir("faults");
    let trace = trace(9);
    let runner = SweepRunner::new(2).with_cache(ReportCache::new(&dir));

    // Warm the cache with the fault-free grid.
    let (clean, s1) = runner.run_with_stats(&grid(&trace));
    assert_eq!(s1.cache_hits, 0);

    // The identical grid under an injected regime must miss on every
    // cell: replaying a cached clean run for a faulted cell would
    // silently report adversity-free numbers as robustness results.
    let storm = grid(&trace).faults(vec![FaultSpec::parse("preempt-storm:2").unwrap()]);
    let (faulted, s2) = runner.run_with_stats(&storm);
    assert_eq!(s2.cache_hits, 0, "clean cells must never serve faulted cells");
    assert_eq!(s2.executed, s2.unique);

    // Intensity is in the fingerprint too, not just the regime name.
    let harder = grid(&trace).faults(vec![FaultSpec::parse("preempt-storm:3").unwrap()]);
    let (_, s3) = runner.run_with_stats(&harder);
    assert_eq!(s3.cache_hits, 0, "intensity must be part of the key");

    // A warm rerun of the faulted grid hits and round-trips exactly.
    let (warm, s4) = runner.run_with_stats(&storm);
    assert!(s4.all_cached());
    assert_eq!(faulted.to_json_pretty(), warm.to_json_pretty());
    assert_ne!(clean.to_json_pretty(), faulted.to_json_pretty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schema_bump_invalidates_every_entry() {
    let dir = tmp_dir("schema");
    let trace = trace(7);

    let current = SweepRunner::new(2).with_cache(ReportCache::new(&dir));
    let (_, s1) = current.run_with_stats(&grid(&trace));
    assert_eq!(s1.cache_hits, 0);
    let (_, warm) = current.run_with_stats(&grid(&trace));
    assert!(warm.all_cached());

    let bumped = SweepRunner::new(2).with_cache(ReportCache::with_schema(
        &dir,
        format!("{SCHEMA_VERSION}-bumped"),
    ));
    let (_, s2) = bumped.run_with_stats(&grid(&trace));
    assert_eq!(s2.cache_hits, 0, "new schema must not read old entries");
    assert_eq!(s2.executed, s2.unique);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_mutation_invalidates_entries() {
    let dir = tmp_dir("mutate");
    let base = trace(8);
    let runner = SweepRunner::new(2).with_cache(ReportCache::new(&dir));
    let (_, s1) = runner.run_with_stats(&grid(&base));
    assert_eq!(s1.cache_hits, 0);

    // One job runs a minute longer: every cell key changes.
    let mut jobs = base.into_jobs();
    jobs[0].duration_at_full_tput += SimDuration::from_mins(1);
    let mutated = Trace::new(jobs);
    let (_, s2) = runner.run_with_stats(&grid(&mutated));
    assert_eq!(s2.cache_hits, 0, "mutated trace content must miss");
    assert_eq!(s2.executed, s2.unique);

    let _ = std::fs::remove_dir_all(&dir);
}
