//! Smoke tests for the `eva` CLI: the catalog-style subcommands must exit
//! zero and print real content, so the README quickstart keeps working.

use std::process::Command;

fn run_eva(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_eva"))
        .args(args)
        .output()
        .expect("failed to spawn the eva binary")
}

#[test]
fn workloads_subcommand_prints_table7() {
    let out = run_eva(&["workloads"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.trim().is_empty());
    // The Table 7 catalog spans ML training and scientific computing.
    assert!(stdout.contains("GPT2"), "missing GPT2 in:\n{stdout}");
    assert!(stdout.contains("OpenFOAM"), "missing OpenFOAM in:\n{stdout}");
}

#[test]
fn catalog_subcommand_prints_aws_types() {
    let out = run_eva(&["catalog"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.trim().is_empty());
    // The 21-type AWS evaluation catalog covers GPU and CPU families.
    assert!(stdout.contains("p3."), "missing p3 family in:\n{stdout}");
    assert!(stdout.contains("c7i."), "missing c7i family in:\n{stdout}");
    assert!(stdout.contains("/hr"), "missing hourly prices in:\n{stdout}");
}

#[test]
fn help_lists_every_subcommand() {
    let out = run_eva(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for cmd in ["simulate", "compare", "sweep", "workloads", "catalog", "cache"] {
        assert!(stdout.contains(cmd), "help does not mention `{cmd}`");
    }
    for flag in [
        "--period",
        "--threads",
        "--schedulers",
        "--seeds",
        "--shard",
        "--cache",
        "--no-cache",
        "--cache-dir",
        "--procs",
    ] {
        assert!(stdout.contains(flag), "help does not mention `{flag}`");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = run_eva(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("frobnicate"), "stderr: {stderr}");
}

#[test]
fn simulate_small_trace_reports_cost() {
    let out = run_eva(&["simulate", "--jobs", "10", "--seed", "7"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains('$'), "no cost column in:\n{stdout}");
}

#[test]
fn simulate_accepts_period_and_threads() {
    let out = run_eva(&[
        "simulate", "--jobs", "6", "--period", "10", "--threads", "2",
    ]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains('$'), "no cost column in:\n{stdout}");
}

#[test]
fn bad_period_and_threads_fail_in_flag_style() {
    // Error messages follow the existing `--jobs`/`--seed` style:
    // `error: --<flag>: <cause>`.
    for (args, flag) in [
        (vec!["simulate", "--period", "abc"], "--period"),
        (vec!["simulate", "--period", "0"], "--period"),
        (vec!["compare", "--threads", "abc"], "--threads"),
        (vec!["sweep", "--threads"], "--threads"),
    ] {
        let out = run_eva(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("error:") && stderr.contains(flag),
            "{args:?} → {stderr}"
        );
    }
}

#[test]
fn sweep_runs_grid_and_writes_stable_json() {
    // Per-process filenames so concurrent test runs never collide.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let path_a = dir.join(format!("eva_cli_sweep_{pid}_a.json"));
    let path_b = dir.join(format!("eva_cli_sweep_{pid}_b.json"));
    let base = [
        "sweep",
        "--jobs",
        "6",
        "--schedulers",
        "no-packing,stratus",
        "--seeds",
        "1,2",
    ];
    let mut args_a: Vec<&str> = base.to_vec();
    let a_path = path_a.to_str().unwrap();
    args_a.extend(["--threads", "1", "--json", a_path]);
    let mut args_b: Vec<&str> = base.to_vec();
    let b_path = path_b.to_str().unwrap();
    args_b.extend(["--threads", "4", "--json", b_path]);

    let out_a = run_eva(&args_a);
    assert!(out_a.status.success(), "exit: {:?}", out_a.status);
    let stdout = String::from_utf8(out_a.stdout).unwrap();
    assert!(stdout.contains("4 cells"), "cell count missing:\n{stdout}");
    assert!(stdout.contains("stratus"), "per-cell rows missing:\n{stdout}");

    let out_b = run_eva(&args_b);
    assert!(out_b.status.success(), "exit: {:?}", out_b.status);
    let json_a = std::fs::read(&path_a).unwrap();
    let json_b = std::fs::read(&path_b).unwrap();
    assert!(!json_a.is_empty());
    assert_eq!(
        json_a, json_b,
        "sweep JSON must be byte-identical for any --threads value"
    );
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn sweep_rejects_degenerate_shard_counts() {
    // `--shard 0` / `--shard 1` used to run unsharded with no feedback;
    // they are now flag errors pointing at `--shard`.
    for v in ["0", "1", "bogus", "auto:0"] {
        let out = run_eva(&["sweep", "--jobs", "6", "--shard", v]);
        assert!(!out.status.success(), "--shard {v} should fail");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("error:") && stderr.contains("--shard"),
            "--shard {v} → {stderr}"
        );
    }
}

#[test]
fn sweep_shard_auto_reports_plan_audit_and_json_artifact() {
    let path = std::env::temp_dir().join(format!(
        "eva_cli_shard_auto_{}.json",
        std::process::id()
    ));
    let out = run_eva(&[
        "sweep",
        "--jobs",
        "20",
        "--rate",
        "0.05",
        "--schedulers",
        "no-packing",
        "--seeds",
        "1",
        "--shard",
        "auto:8",
        "--threads",
        "2",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The planner reports what it actually did, and the splice audits
    // the partition instead of assuming it is clean.
    assert!(stdout.contains("shard plan:"), "no shard plan in:\n{stdout}");
    assert!(
        stdout.contains("partition audit:"),
        "no audit line in:\n{stdout}"
    );
    // The artifact carries the PartitionAudit alongside the spliced rows.
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"spliced\""), "artifact lacks spliced view");
    assert!(json.contains("\"audit\""), "artifact lacks the audit");
    assert!(json.contains("\"straddlers\""));
    assert!(json.contains("\"clean\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sweep_rejects_unknown_scheduler() {
    let out = run_eva(&["sweep", "--schedulers", "no-packing,slurm"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("slurm"), "stderr: {stderr}");
}
