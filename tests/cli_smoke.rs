//! Smoke tests for the `eva` CLI: the catalog-style subcommands must exit
//! zero and print real content, so the README quickstart keeps working.

use std::process::Command;

fn run_eva(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_eva"))
        .args(args)
        .output()
        .expect("failed to spawn the eva binary")
}

#[test]
fn workloads_subcommand_prints_table7() {
    let out = run_eva(&["workloads"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.trim().is_empty());
    // The Table 7 catalog spans ML training and scientific computing.
    assert!(stdout.contains("GPT2"), "missing GPT2 in:\n{stdout}");
    assert!(stdout.contains("OpenFOAM"), "missing OpenFOAM in:\n{stdout}");
}

#[test]
fn catalog_subcommand_prints_aws_types() {
    let out = run_eva(&["catalog"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.trim().is_empty());
    // The 21-type AWS evaluation catalog covers GPU and CPU families.
    assert!(stdout.contains("p3."), "missing p3 family in:\n{stdout}");
    assert!(stdout.contains("c7i."), "missing c7i family in:\n{stdout}");
    assert!(stdout.contains("/hr"), "missing hourly prices in:\n{stdout}");
}

#[test]
fn help_lists_every_subcommand() {
    let out = run_eva(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for cmd in ["simulate", "compare", "workloads", "catalog"] {
        assert!(stdout.contains(cmd), "help does not mention `{cmd}`");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = run_eva(&["frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("frobnicate"), "stderr: {stderr}");
}

#[test]
fn simulate_small_trace_reports_cost() {
    let out = run_eva(&["simulate", "--jobs", "10", "--seed", "7"]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains('$'), "no cost column in:\n{stdout}");
}
