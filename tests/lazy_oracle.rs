//! Oracle for the O(changed) hot loop: the lazy dirty-set path
//! (segment-log progress, dirty-only completion rescheduling,
//! incremental allocation/capacity integrals) must be *semantically
//! invisible*. The same seeded simulation is stepped in lockstep
//! through the lazy path and the debug-only eager reference
//! (`SimConfig::reference_full_scan`), and every event boundary must
//! agree on job progress, cached rates, completion times, and integral
//! accumulators — bit for bit, via shortest-roundtrip float formatting
//! (distinct bits ⇒ distinct strings).

use eva::prelude::*;
use proptest::prelude::*;

fn trace(jobs: usize, seed: u64, rate: f64) -> Trace {
    AlibabaTraceConfig {
        num_jobs: jobs,
        arrival_rate_per_hour: rate,
        durations: DurationModelChoice::Alibaba,
    }
    .generate(seed)
}

fn sims(jobs: usize, seed: u64, regime: &str) -> (ClusterSim, ClusterSim) {
    let mut cfg = SimConfig::new(trace(jobs, seed, 8.0), SchedulerKind::Stratus);
    cfg.seed = seed;
    cfg.faults = FaultSpec::parse(regime).expect("valid regime");
    let mut reference = cfg.clone();
    reference.reference_full_scan = true;
    (ClusterSim::new(&cfg), ClusterSim::new(&reference))
}

/// Steps both worlds to exhaustion, comparing digests at every event
/// boundary, then compares the final reports byte-for-byte.
fn assert_lockstep(mut lazy: ClusterSim, mut full: ClusterSim) -> Result<(), TestCaseError> {
    let mut steps = 0u64;
    loop {
        let (a, b) = (lazy.step(), full.step());
        prop_assert_eq!(a, b, "event streams diverged in length at step {}", steps);
        prop_assert_eq!(
            lazy.now(),
            full.now(),
            "clocks diverged at step {}",
            steps
        );
        let (da, db) = (lazy.oracle_digest(), full.oracle_digest());
        prop_assert_eq!(da, db, "world digests diverged at step {}", steps);
        lazy.audit_slots().map_err(TestCaseError::fail)?;
        if !a {
            break;
        }
        steps += 1;
    }
    let ra = serde_json::to_string(&lazy.run()).expect("report serializes");
    let rb = serde_json::to_string(&full.run()).expect("report serializes");
    prop_assert_eq!(ra, rb, "final reports diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn lazy_dirty_set_path_matches_full_scan_reference(
        jobs in 2usize..14,
        seed in 0u64..500,
        regime in prop_oneof![
            Just("none"),
            Just("preempt-storm:3"),
            Just("worker-crash:2"),
            Just("straggler:2"),
            Just("ckpt-drop"),
        ],
    ) {
        let (lazy, full) = sims(jobs, seed, regime);
        assert_lockstep(lazy, full)?;
    }
}
