//! End-to-end service mode: `serve` must run a long open-loop stream in
//! bounded memory (arena rows track the in-flight window, not the total
//! job count), emit deterministic rolling metrics, and drain cleanly.

use eva::prelude::*;
use std::io::Write as _;

fn serve_cfg() -> SimConfig {
    let mut cfg = SimConfig::new(
        TraceHandle::new(Trace::new(Vec::new())),
        SchedulerKind::Stratus,
    );
    cfg.retire_completed = true;
    cfg.seed = 1;
    cfg
}

#[test]
fn long_stream_runs_in_bounded_arena_memory() {
    // 1500 jobs at ~30/h with 0.5–3 h durations keeps a few dozen jobs
    // in flight; without retirement the arena would grow one row per
    // job ingested.
    let source = Box::new(SyntheticSource::open_loop(30.0, 1500, 5));
    let mut out = Vec::new();
    let outcome = serve(
        &serve_cfg(),
        source,
        &ServeConfig {
            metrics_every: SimDuration::from_hours(4),
            duration: None,
        },
        &mut out,
    )
    .unwrap();
    assert_eq!(outcome.jobs_ingested, 1500);
    assert_eq!(outcome.report.jobs_completed, 1500);
    assert!(
        outcome.peak_job_rows < 300,
        "arena rows must track the in-flight window, not total jobs \
         ({} rows for 1500 jobs)",
        outcome.peak_job_rows
    );
    assert_eq!(outcome.final_snapshot.live_job_slots, 0, "drained clean");
    assert!(outcome.metrics_lines >= 1);
}

#[test]
fn rolling_metrics_lines_are_identical_across_runs() {
    let run = || {
        let source = Box::new(SyntheticSource::open_loop(12.0, 200, 21));
        let mut out = Vec::new();
        serve(
            &serve_cfg(),
            source,
            &ServeConfig {
                metrics_every: SimDuration::from_hours(2),
                duration: None,
            },
            &mut out,
        )
        .unwrap();
        out
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty());
    assert_eq!(a, b, "fixed seed + source must emit identical JSON lines");
}

#[test]
fn stdin_style_json_lines_feed_the_service_loop() {
    // Build a line-delimited job stream in memory, exactly what
    // `eva serve --source stdin` reads from a pipe.
    let jobs = SyntheticTraceConfig::small_scale().generate(4).into_jobs();
    let mut feed = Vec::new();
    for job in &jobs {
        writeln!(feed, "{}", serde_json::to_string(job).unwrap()).unwrap();
    }
    let n = jobs.len() as u64;
    let source = Box::new(JsonLinesSource::new(std::io::BufReader::new(
        std::io::Cursor::new(feed),
    )));
    let mut out = Vec::new();
    let outcome = serve(&serve_cfg(), source, &ServeConfig::default(), &mut out).unwrap();
    assert_eq!(outcome.jobs_ingested, n);
    assert_eq!(outcome.report.jobs_completed as u64, n);
}

#[test]
fn duration_horizon_stops_ingestion_but_drains_in_flight() {
    let source = Box::new(SyntheticSource::open_loop(10.0, 100_000, 3));
    let mut out = Vec::new();
    let outcome = serve(
        &serve_cfg(),
        source,
        &ServeConfig {
            metrics_every: SimDuration::from_hours(1),
            duration: Some(SimDuration::from_hours(24)),
        },
        &mut out,
    )
    .unwrap();
    assert!(outcome.jobs_ingested > 100, "a day of ~10/h arrivals");
    assert!(outcome.jobs_ingested < 1000, "horizon bounded ingestion");
    assert_eq!(
        outcome.report.jobs_completed as u64, outcome.jobs_ingested,
        "everything ingested before the horizon completes"
    );
    assert_eq!(outcome.final_snapshot.queue_depth, 0);
}
