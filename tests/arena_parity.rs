//! Golden regression for the arena-indexed world state.
//!
//! The world model stores job/task/instance state in dense slot-indexed
//! arenas. This suite pins the *observable* behaviour of that storage to
//! a committed golden file produced by the pre-arena (map-keyed) world:
//! sweep JSON across the paper scheduler set, both execution backends,
//! sharded and unsharded, fault-free and fault-injected, must stay
//! **byte-identical** — the arena is a representation change, never a
//! semantic one.
//!
//! Regenerate the golden only when the simulation semantics are *meant*
//! to change (and say so in the PR):
//!
//! ```text
//! EVA_BLESS=1 cargo test --test arena_parity
//! ```
//!
//! A proptest additionally churns worlds through random fault regimes
//! (instance preemptions retire arena slots; later provisions reuse
//! them) and audits that every live ID still round-trips through its
//! slot at mid-run and at drain.

use std::fmt::Write as _;
use std::path::PathBuf;

use eva::prelude::*;
use proptest::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("arena_parity.json")
}

fn trace(jobs: usize, seed: u64, rate: f64) -> Trace {
    AlibabaTraceConfig {
        num_jobs: jobs,
        arrival_rate_per_hour: rate,
        durations: DurationModelChoice::Alibaba,
    }
    .generate(seed)
}

/// The paper scheduler set over one moderate trace, unsharded, sim
/// backend — the bread-and-butter sweep every experiment binary runs.
fn paper_grid() -> SweepGrid {
    SweepGrid::new("paper-sim", trace(20, 3, 6.0))
        .paper_schedulers()
        .seeds(vec![1, 2])
}

/// The same paper set over a sparse trace split by the density-aware
/// planner — shard cells plus their spliced whole-trace view.
fn sharded_grid() -> SweepGrid {
    SweepGrid::new("paper-sharded", trace(24, 9, 0.05))
        .paper_schedulers()
        .shards(ShardPolicy::auto_with_budget(8))
}

/// Sim vs live on one small trace: the live backend replays the recorded
/// schedule through the real master/worker runtime.
fn backend_grid() -> SweepGrid {
    SweepGrid::new("backends", trace(10, 5, 6.0))
        .paper_schedulers()
        .backends(vec![BackendKind::Sim, BackendKind::Live])
}

/// Fault-injected cells: preemption churn retires and reuses instance
/// slots, stragglers exercise the per-slot slowdown factor, checkpoint
/// drops rewind job progress.
fn faulted_grid() -> SweepGrid {
    let faults = ["preempt-storm", "straggler:2", "ckpt-drop"]
        .iter()
        .map(|s| FaultSpec::parse(s).expect("valid fault spec"))
        .collect::<Vec<_>>();
    SweepGrid::new("faulted", trace(16, 7, 6.0))
        .paper_schedulers()
        .faults(faults)
}

/// Runs every parity grid and concatenates the sweep JSON (cells plus
/// spliced whole-trace views) into one deterministic document.
fn render_all() -> String {
    let mut doc = String::new();
    writeln!(doc, "{{").unwrap();
    let grids: Vec<(&str, SweepGrid)> = vec![
        ("paper", paper_grid()),
        ("sharded", sharded_grid()),
        ("backends", backend_grid()),
        ("faulted", faulted_grid()),
    ];
    let last = grids.len() - 1;
    for (i, (name, grid)) in grids.into_iter().enumerate() {
        let result = SweepRunner::new(2).run(&grid);
        let spliced = result.spliced();
        writeln!(doc, "\"{name}\": {{").unwrap();
        writeln!(doc, "\"sweep\": {},", result.to_json_pretty()).unwrap();
        writeln!(
            doc,
            "\"spliced\": {}",
            serde_json::to_string_pretty(&spliced).unwrap()
        )
        .unwrap();
        writeln!(doc, "}}{}", if i == last { "" } else { "," }).unwrap();
    }
    writeln!(doc, "}}").unwrap();
    doc
}

#[test]
fn sweep_json_is_byte_identical_to_golden() {
    let rendered = render_all();
    // The golden must itself be valid JSON (guards the renderer).
    serde_json::from_str::<serde_json::Value>(&rendered).expect("rendered doc parses");
    let path = golden_path();
    if std::env::var("EVA_BLESS").map(|v| v == "1").unwrap_or(false) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate with EVA_BLESS=1 cargo test --test arena_parity",
            path.display()
        )
    });
    if rendered != golden {
        // Locate the first divergent line for a readable failure.
        for (i, (r, g)) in rendered.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                r,
                g,
                "sweep JSON diverged from the pre-arena golden at line {}",
                i + 1
            );
        }
        panic!(
            "sweep JSON diverged from golden in length: {} vs {} bytes",
            rendered.len(),
            golden.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Slot interning survives arrival/retire/churn: step a world through
    /// a fault regime that preempts instances (retiring their slots for
    /// reuse), audit mid-run and after drain that every live ID maps to a
    /// slot that maps back to the same ID.
    #[test]
    fn slot_interning_round_trips_under_churn(
        jobs in 2usize..14,
        seed in 0u64..500,
        regime in prop_oneof![
            Just("none"),
            Just("preempt-storm:3"),
            Just("worker-crash:2"),
            Just("straggler:2"),
            Just("ckpt-drop"),
        ],
        pause in 5usize..60,
    ) {
        let mut cfg = SimConfig::new(trace(jobs, seed, 8.0), SchedulerKind::Stratus);
        cfg.seed = seed;
        cfg.faults = FaultSpec::parse(regime).unwrap();
        let mut sim = ClusterSim::new(&cfg);
        let mut steps = 0usize;
        loop {
            let more = sim.step();
            steps += 1;
            if steps.is_multiple_of(pause) {
                sim.audit_slots().expect("mid-run slot audit");
            }
            if !more {
                break;
            }
        }
        sim.audit_slots().expect("drained slot audit");
        let report = sim.run();
        prop_assert_eq!(report.jobs_completed, jobs, "every job completes");
    }
}
