//! Oracle for job retirement: releasing completed jobs' arena slots
//! (`SimConfig::retire_completed`) must be *semantically invisible*.
//! The same seeded simulation is stepped in lockstep with retirement on
//! and off, and every event boundary must agree on live-job progress,
//! completed-job report contributions, and the global integrals — bit
//! for bit, via shortest-roundtrip float formatting — across every
//! fault regime. Final reports must serialize identically.

use eva::prelude::*;
use proptest::prelude::*;

fn trace(jobs: usize, seed: u64) -> Trace {
    AlibabaTraceConfig {
        num_jobs: jobs,
        arrival_rate_per_hour: 8.0,
        durations: DurationModelChoice::Alibaba,
    }
    .generate(seed)
}

fn sims(jobs: usize, seed: u64, regime: &str) -> (ClusterSim, ClusterSim) {
    let mut cfg = SimConfig::new(trace(jobs, seed), SchedulerKind::Stratus);
    cfg.seed = seed;
    cfg.faults = FaultSpec::parse(regime).expect("valid regime");
    let mut retire = cfg.clone();
    retire.retire_completed = true;
    (ClusterSim::new(&retire), ClusterSim::new(&cfg))
}

/// Steps both worlds to exhaustion, comparing stream digests at every
/// event boundary, then compares the final reports byte-for-byte.
fn assert_lockstep(mut retire: ClusterSim, mut keep: ClusterSim) -> Result<(), TestCaseError> {
    let mut steps = 0u64;
    loop {
        let (a, b) = (retire.step(), keep.step());
        prop_assert_eq!(a, b, "event streams diverged in length at step {}", steps);
        prop_assert_eq!(
            retire.now(),
            keep.now(),
            "clocks diverged at step {}",
            steps
        );
        let (da, db) = (retire.stream_digest(), keep.stream_digest());
        prop_assert_eq!(da, db, "world digests diverged at step {}", steps);
        retire.audit_slots().map_err(TestCaseError::fail)?;
        keep.audit_slots().map_err(TestCaseError::fail)?;
        if !a {
            break;
        }
        steps += 1;
    }
    let ra = serde_json::to_string(&retire.run()).expect("report serializes");
    let rb = serde_json::to_string(&keep.run()).expect("report serializes");
    prop_assert_eq!(ra, rb, "final reports diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn retirement_matches_keep_everything_reference(
        jobs in 2usize..14,
        seed in 0u64..500,
        regime in prop_oneof![
            Just("none"),
            Just("preempt-storm:3"),
            Just("worker-crash:2"),
            Just("straggler:2"),
            Just("ckpt-drop"),
        ],
    ) {
        let (retire, keep) = sims(jobs, seed, regime);
        assert_lockstep(retire, keep)?;
    }
}

#[test]
fn retirement_frees_slots_in_batch_mode_too() {
    // Batch worlds intern everything up front, so retirement cannot
    // recycle rows — but it must still empty the live set and move
    // every contribution into the completed log without changing the
    // report.
    let mut cfg = SimConfig::new(trace(12, 3), SchedulerKind::Stratus);
    cfg.retire_completed = true;
    let mut sim = ClusterSim::new(&cfg);
    while sim.step() {}
    assert_eq!(sim.live_job_slots(), 0, "every completed job released");
    assert_eq!(sim.job_arena_rows(), 12, "batch rows are pre-interned");
    sim.audit_slots().expect("audit after full retirement");
}
