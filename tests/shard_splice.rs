//! Splice determinism: a sharded sweep of a synthetic trace must merge
//! back to the unsharded run — byte-identically for the metrics whose
//! splice is exact — for any worker count and on both backends.
//!
//! The trace is built so the shard partition is *clean*: three arrival
//! clusters separated by ~100-hour idle gaps, nominal delay fidelity.
//! Every instance is terminated long before the next window begins, so
//! the whole-trace run performs exactly the union of the three window
//! runs, and the integer-sum metrics (`jobs_completed`,
//! `instances_launched`) must match bit for bit. Float metrics are
//! explicitly flagged as approximate by the splice and are not required
//! to match.

use eva::prelude::*;
use eva_cloud::FidelityMode;

const CLUSTERS: u64 = 3;
const JOBS_PER_CLUSTER: usize = 5;

/// Three Poisson arrival clusters ~100 h apart, short jobs, single-task.
fn clustered_trace() -> Trace {
    let mut jobs = Vec::new();
    for k in 0..CLUSTERS {
        let cluster = SyntheticTraceConfig {
            num_jobs: JOBS_PER_CLUSTER,
            mean_interarrival: SimDuration::from_mins(10),
            duration: eva::workloads::UniformHours::new(0.3, 0.8),
            single_task_only: true,
        }
        .generate(100 + k);
        for mut job in cluster.into_jobs() {
            job.arrival += SimDuration::from_hours(100 * k);
            job.id = JobId(job.id.0 + 1000 * k);
            for t in &mut job.tasks {
                t.id = TaskId::new(job.id, t.id.index);
            }
            jobs.push(job);
        }
    }
    Trace::new(jobs)
}

fn grid(trace: &Trace, backend: BackendKind, sharded: bool) -> SweepGrid {
    let mut grid = SweepGrid::new("clustered", trace.clone());
    if sharded {
        grid = grid.shards(ShardPolicy::Windows(CLUSTERS as usize));
    }
    grid.schedulers_by_name(&["no-packing", "stratus", "eva"])
        .unwrap()
        .fidelities(vec![FidelityMode::Nominal])
        .backends(vec![backend])
}

#[test]
fn sharded_sweep_splices_byte_identical_to_unsharded_for_exact_metrics() {
    let trace = clustered_trace();
    for backend in [BackendKind::Sim, BackendKind::Live] {
        let whole = SweepRunner::new(2).run(&grid(&trace, backend, false));

        let mut spliced_jsons = Vec::new();
        for threads in [1, 2, 8] {
            let sharded = SweepRunner::new(threads).run(&grid(&trace, backend, true));
            assert_eq!(
                sharded.cells.len(),
                3 * whole.cells.len(),
                "one cell per (shard × scheduler)"
            );
            let spliced = sharded.spliced();
            assert_eq!(spliced.cells.len(), whole.cells.len());
            for (s, w) in spliced.cells.iter().zip(&whole.cells) {
                assert_eq!(s.key, w.key.logical());
                assert_eq!(s.shards, 3);
                // The exact set, compared down to serialized bytes.
                assert_eq!(
                    s.report.jobs_completed, w.report.jobs_completed,
                    "jobs_completed diverged for {:?} on {:?}",
                    s.key.scheduler, backend
                );
                assert_eq!(
                    s.report.instances_launched, w.report.instances_launched,
                    "instances_launched diverged for {:?} on {:?}",
                    s.key.scheduler, backend
                );
                assert_eq!(
                    serde_json::to_string(&s.report.jobs_completed).unwrap(),
                    serde_json::to_string(&w.report.jobs_completed).unwrap()
                );
                assert_eq!(
                    serde_json::to_string(&s.report.instances_launched).unwrap(),
                    serde_json::to_string(&w.report.instances_launched).unwrap()
                );
                // Exact metrics are not flagged; approximate ones are.
                assert!(!s.inexact_metrics.iter().any(|m| m == "jobs_completed"));
                assert!(!s.inexact_metrics.iter().any(|m| m == "instances_launched"));
                assert!(s.inexact_metrics.iter().any(|m| m == "total_cost_dollars"));
                assert!(s.inexact_metrics.iter().any(|m| m == "makespan_hours"));
                // The flagged metrics are still *good* approximations on
                // a clean partition — sanity-bound them.
                assert!(
                    (s.report.total_cost_dollars - w.report.total_cost_dollars).abs()
                        < 1e-6 * w.report.total_cost_dollars.max(1.0),
                    "spliced cost drifted: {} vs {}",
                    s.report.total_cost_dollars,
                    w.report.total_cost_dollars
                );
                assert!(
                    (s.report.makespan_hours - w.report.makespan_hours).abs() < 1e-6,
                    "spliced makespan drifted: {} vs {}",
                    s.report.makespan_hours,
                    w.report.makespan_hours
                );
            }
            spliced_jsons.push(spliced.to_json_pretty());
        }
        // The spliced view is byte-identical for any worker count.
        assert_eq!(spliced_jsons[0], spliced_jsons[1]);
        assert_eq!(spliced_jsons[1], spliced_jsons[2]);
    }
}

#[test]
fn every_paper_scheduler_splices_exact_on_a_clean_partition() {
    let trace = clustered_trace();
    let whole = SweepRunner::new(4).run(
        &SweepGrid::new("t", trace.clone())
            .paper_schedulers()
            .fidelities(vec![FidelityMode::Nominal]),
    );
    let spliced = SweepRunner::new(4)
        .run(
            &SweepGrid::new("t", trace)
                .shards(ShardPolicy::Windows(CLUSTERS as usize))
                .paper_schedulers()
                .fidelities(vec![FidelityMode::Nominal]),
        )
        .spliced();
    for (s, w) in spliced.cells.iter().zip(&whole.cells) {
        assert_eq!(s.report.jobs_completed, w.report.jobs_completed, "{}", s.key.scheduler);
        assert_eq!(
            s.report.instances_launched, w.report.instances_launched,
            "{}",
            s.key.scheduler
        );
    }
}

#[test]
fn auto_planned_clean_partition_stays_byte_identical() {
    // The density-aware planner must find the inter-cluster gaps on its
    // own (budget = cluster size), audit the partition clean, and keep
    // the integer metrics byte-identical to the unsharded run.
    let trace = clustered_trace();
    let schedulers = ["no-packing", "stratus", "eva"];
    let whole = SweepRunner::new(2).run(
        &SweepGrid::new("clustered", trace.clone())
            .schedulers_by_name(&schedulers)
            .unwrap()
            .fidelities(vec![FidelityMode::Nominal]),
    );
    let spliced = SweepRunner::new(2)
        .run(
            &SweepGrid::new("clustered", trace)
                .shards(ShardPolicy::auto_with_budget(JOBS_PER_CLUSTER))
                .schedulers_by_name(&schedulers)
                .unwrap()
                .fidelities(vec![FidelityMode::Nominal]),
        )
        .spliced();
    assert_eq!(spliced.cells.len(), whole.cells.len());
    for (s, w) in spliced.cells.iter().zip(&whole.cells) {
        assert_eq!(s.shards, CLUSTERS as usize, "planner missed a cluster gap");
        assert!(s.audit.clean, "auto plan must audit clean: {:?}", s.audit);
        assert_eq!(s.audit.straddlers, 0);
        assert_eq!(s.audit.windows, CLUSTERS as usize);
        assert_eq!(s.report.jobs_completed, w.report.jobs_completed);
        assert_eq!(s.report.instances_launched, w.report.instances_launched);
        assert!(!s.inexact_metrics.iter().any(|m| m == "jobs_completed"));
        assert!(!s.inexact_metrics.iter().any(|m| m == "instances_launched"));
    }
}

#[test]
fn dirty_partition_is_detected_demoted_and_still_splices() {
    // One job in the first cluster runs ~150 h — straight through the
    // second window's boundary. The sweep must not panic, the audit must
    // flag the partition, and the integer metrics must lose their
    // exactness claim, identically for any worker count.
    let mut jobs = clustered_trace().into_jobs();
    jobs[0].duration_at_full_tput = SimDuration::from_hours(150);
    let trace = Trace::new(jobs);

    let mut jsons = Vec::new();
    for threads in [1, 2, 8] {
        let sharded = SweepRunner::new(threads).run(&grid(&trace, BackendKind::Sim, true));
        let spliced = sharded.spliced();
        for outcome in &spliced.cells {
            assert!(!outcome.audit.clean, "straddler went undetected");
            assert_eq!(outcome.audit.straddlers, 1);
            assert_eq!(outcome.audit.windows, CLUSTERS as usize);
            assert!(
                outcome.inexact_metrics.iter().any(|m| m == "jobs_completed"),
                "dirty partition must demote jobs_completed"
            );
            assert!(outcome
                .inexact_metrics
                .iter()
                .any(|m| m == "instances_launched"));
            // The spliced values themselves are still produced.
            assert!(outcome.report.jobs_completed > 0);
        }
        let audit = spliced.audit().expect("non-empty result");
        assert!(!audit.clean);
        assert!(audit.summary().contains("DIRTY"));
        jsons.push(spliced.to_json_pretty());
    }
    assert_eq!(jsons[0], jsons[1]);
    assert_eq!(jsons[1], jsons[2]);
    // The artifact carries the audit for downstream consumers.
    assert!(jsons[0].contains("\"straddlers\""));
    assert!(jsons[0].contains("\"clean\""));
}

#[test]
fn shard_cells_carry_only_their_window() {
    // The memory-bounding property: a shard cell's config holds the
    // window's jobs, not the whole trace.
    let trace = clustered_trace();
    let grid = grid(&trace, BackendKind::Sim, true);
    let cells = grid.cells();
    assert_eq!(cells.len(), 9);
    for cell in &cells {
        let cfg = grid.cell_config(cell);
        assert_eq!(cfg.trace.len(), JOBS_PER_CLUSTER);
        let meta = cell.key.shard.as_ref().expect("sharded cells carry meta");
        assert_eq!(meta.count, CLUSTERS as usize);
        assert_eq!(meta.jobs, JOBS_PER_CLUSTER);
    }
}
