//! Determinism guarantees of the layered simulator.
//!
//! (a) The same `SimConfig` (trace + seed + knobs) must produce an
//!     identical `SimReport` on every run — even under stochastic delay
//!     fidelity, where all randomness flows from the config's seed.
//! (b) `SweepRunner` must produce results identical to the serial run of
//!     the same grid for any worker count, down to the serialized JSON
//!     bytes — parallelism must never leak into outcomes.

use eva::prelude::*;
use eva_cloud::FidelityMode;

fn trace(jobs: usize, seed: u64) -> Trace {
    AlibabaTraceConfig {
        num_jobs: jobs,
        arrival_rate_per_hour: 6.0,
        durations: DurationModelChoice::Alibaba,
    }
    .generate(seed)
}

#[test]
fn same_config_and_seed_yields_identical_report() {
    for scheduler in [SchedulerKind::Eva(EvaConfig::eva()), SchedulerKind::Stratus] {
        let mut cfg = SimConfig::new(trace(25, 11), scheduler);
        cfg.seed = 913;
        cfg.fidelity = FidelityMode::Stochastic;
        let a = run_simulation(&cfg);
        let b = run_simulation(&cfg);
        assert_eq!(a, b, "{} diverged across reruns", a.scheduler);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}

#[test]
fn different_seeds_actually_change_stochastic_outcomes() {
    // Guards against the seed being silently ignored, which would make
    // the identity assertions above vacuous.
    let mut a_cfg = SimConfig::new(trace(25, 11), SchedulerKind::Eva(EvaConfig::eva()));
    a_cfg.fidelity = FidelityMode::Stochastic;
    let mut b_cfg = a_cfg.clone();
    b_cfg.seed = a_cfg.seed + 1;
    let a = run_simulation(&a_cfg);
    let b = run_simulation(&b_cfg);
    assert_ne!(a, b, "stochastic delays must depend on the seed");
}

#[test]
fn parallel_sweep_matches_serial_sweep_byte_for_byte() {
    let grid = SweepGrid::new("determinism", trace(15, 3))
        .paper_schedulers()
        .seeds(vec![1, 2]);
    let serial = SweepRunner::new(1).run(&grid);
    let parallel = SweepRunner::new(4).run(&grid);
    assert_eq!(serial.cells.len(), 10);
    assert_eq!(serial, parallel);
    assert_eq!(
        serial.to_json_pretty(),
        parallel.to_json_pretty(),
        "aggregated JSON must be byte-identical for any thread count"
    );
    // And re-running the parallel sweep is stable too.
    let again = SweepRunner::new(4).run(&grid);
    assert_eq!(parallel, again);
}

#[test]
fn sweep_cells_preserve_grid_order_regardless_of_threads() {
    let grid = SweepGrid::new("order", trace(8, 5))
        .schedulers_by_name(&["no-packing", "eva"])
        .unwrap()
        .seeds(vec![7, 8, 9]);
    let result = SweepRunner::new(6).run(&grid);
    let keys: Vec<(u64, String)> = result
        .cells
        .iter()
        .map(|c| (c.key.seed, c.key.scheduler.clone()))
        .collect();
    let expected: Vec<(u64, String)> = [7u64, 8, 9]
        .iter()
        .flat_map(|&s| {
            [("no-packing", s), ("eva", s)]
                .into_iter()
                .map(move |(n, s)| (s, n.to_string()))
        })
        .collect();
    assert_eq!(keys, expected);
}
