//! Integration test: full simulations across every scheduler.

use eva::prelude::*;

fn trace() -> Trace {
    SyntheticTraceConfig {
        num_jobs: 24,
        mean_interarrival: SimDuration::from_mins(8),
        duration: eva::workloads::UniformHours::new(0.3, 1.0),
        single_task_only: false,
    }
    .generate(2024)
}

fn all_schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::NoPacking,
        SchedulerKind::Stratus,
        SchedulerKind::Synergy,
        SchedulerKind::Owl,
        SchedulerKind::Eva(EvaConfig::eva()),
        SchedulerKind::Eva(EvaConfig::eva_rp()),
        SchedulerKind::Eva(EvaConfig::eva_single()),
        SchedulerKind::Eva(EvaConfig::without_full()),
        SchedulerKind::Eva(EvaConfig::without_partial()),
    ]
}

#[test]
fn every_scheduler_completes_every_job() {
    let trace = trace();
    for kind in all_schedulers() {
        let label = kind.label();
        let report = run_simulation(&SimConfig::new(trace.clone(), kind));
        assert_eq!(report.jobs_completed, trace.len(), "{label}");
        assert!(report.total_cost_dollars > 0.0, "{label}");
        assert!(
            report.avg_norm_tput > 0.0 && report.avg_norm_tput <= 1.0 + 1e-9,
            "{label}"
        );
        assert!(report.makespan_hours > 0.0, "{label}");
    }
}

#[test]
fn reports_are_deterministic_per_seed() {
    let trace = trace();
    let cfg = SimConfig::new(trace, SchedulerKind::Eva(EvaConfig::eva()));
    assert_eq!(run_simulation(&cfg), run_simulation(&cfg));
}

#[test]
fn gang_jobs_run_to_completion_with_multi_task_awareness() {
    // A trace of ResNet18-4 gang jobs exercises §4.4 end to end.
    let catalog = WorkloadCatalog::table7();
    let w = catalog.by_name("ResNet18-4").unwrap();
    let jobs: Vec<JobSpec> = (0..6)
        .map(|i| {
            w.job_spec(
                JobId(i),
                SimTime::from_secs(i * 1200),
                SimDuration::from_hours_f64(0.5),
            )
        })
        .collect();
    let trace = Trace::new(jobs);
    for cfg in [EvaConfig::eva(), EvaConfig::eva_single()] {
        let report = run_simulation(&SimConfig::new(trace.clone(), SchedulerKind::Eva(cfg)));
        assert_eq!(report.jobs_completed, 6);
    }
}

#[test]
fn interference_sweep_monotonically_hurts_oblivious_packing() {
    let trace = trace();
    let mut jcts = Vec::new();
    for tput in [1.0, 0.9, 0.8] {
        let mut cfg = SimConfig::new(trace.clone(), SchedulerKind::Eva(EvaConfig::eva_rp()));
        cfg.interference = eva::sim::InterferenceSpec::Uniform(tput);
        jcts.push(run_simulation(&cfg).avg_jct_hours);
    }
    assert!(
        jcts[2] >= jcts[0] - 1e-9,
        "harsher interference cannot speed jobs up: {jcts:?}"
    );
}
