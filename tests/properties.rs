//! Property-based tests over the core data structures and algorithms.

use proptest::prelude::*;

use eva::core::{full_reconfiguration, ReservationPrices, TaskSnapshot, TnrpEvaluator, UnitTput};
use eva::interference::ThroughputTable;
use eva::prelude::*;
use eva::solver::{branch_and_bound, first_fit_decreasing, BnbConfig, Item, PackingProblem};

fn arb_demand() -> impl Strategy<Value = ResourceVector> {
    (0u32..=4, 1u32..=32, 1u64..=256)
        .prop_map(|(gpu, cpu, ram_gb)| ResourceVector::with_ram_gb(gpu, cpu, ram_gb))
}

fn arb_tasks(max: usize) -> impl Strategy<Value = Vec<TaskSnapshot>> {
    proptest::collection::vec((arb_demand(), 0u32..8), 1..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (demand, workload))| TaskSnapshot {
                id: TaskId::new(JobId(i as u64), 0),
                workload: WorkloadKind(workload),
                demand: DemandSpec::uniform(demand),
                checkpoint_delay: SimDuration::from_secs(2),
                launch_delay: SimDuration::from_secs(10),
                gang_size: 1,
                gang_coupled: false,
                assigned_to: None,
                remaining_hint: None,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resource_vector_partial_order_is_consistent(
        a in arb_demand(),
        b in arb_demand(),
    ) {
        let sum = a + b;
        prop_assert!(a.fits_within(&sum));
        prop_assert!(b.fits_within(&sum));
        prop_assert_eq!(sum.saturating_sub(&a), b);
    }

    #[test]
    fn cost_arithmetic_is_exact(a in 0.0f64..1000.0, b in 0.0f64..1000.0) {
        let ca = Cost::from_dollars(a);
        let cb = Cost::from_dollars(b);
        prop_assert_eq!(ca + cb, Cost::from_micros(ca.as_micros() + cb.as_micros()));
        prop_assert!(ca.saturating_sub(cb).as_micros() <= ca.as_micros());
    }

    #[test]
    fn throughput_table_estimates_stay_in_unit_interval(
        entries in proptest::collection::vec(
            ((0u32..6, proptest::collection::vec(0u32..6, 1..4)), -0.5f64..1.5),
            0..30,
        ),
        query_task in 0u32..6,
        query_others in proptest::collection::vec(0u32..6, 0..4),
    ) {
        let mut table = ThroughputTable::new(0.95);
        for ((task, others), tput) in entries {
            let others: Vec<WorkloadKind> = others.into_iter().map(WorkloadKind).collect();
            table.record(WorkloadKind(task), &others, tput);
        }
        let others: Vec<WorkloadKind> = query_others.into_iter().map(WorkloadKind).collect();
        let est = table.estimate(WorkloadKind(query_task), &others);
        prop_assert!((0.0..=1.0).contains(&est), "estimate {est}");
        // Solo is always 1.0.
        prop_assert_eq!(table.estimate(WorkloadKind(query_task), &[]), 1.0);
    }

    #[test]
    fn full_reconfiguration_invariants(tasks in arb_tasks(24)) {
        let catalog = Catalog::aws_eval_2025();
        let prices = ReservationPrices::compute(&catalog, tasks.iter());
        let eval = TnrpEvaluator::new(&UnitTput, &prices, true);
        let config = full_reconfiguration(&tasks, &catalog, &eval);

        // 1. Every feasible task assigned exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for inst in &config.instances {
            for t in &inst.tasks {
                prop_assert!(seen.insert(*t), "task {t} assigned twice");
            }
        }
        for t in &tasks {
            let feasible = catalog.cheapest_fit(&t.demand).is_some();
            prop_assert_eq!(
                seen.contains(&t.id),
                feasible,
                "task {} feasible={} assigned={}",
                t.id, feasible, seen.contains(&t.id)
            );
        }
        // 2. Capacity respected on every instance.
        for inst in &config.instances {
            let ty = catalog.get(inst.type_id).unwrap();
            let mut used = ResourceVector::ZERO;
            for tid in &inst.tasks {
                let task = tasks.iter().find(|t| t.id == *tid).unwrap();
                used += ty.demand_of(&task.demand);
            }
            prop_assert!(used.fits_within(&ty.capacity));
        }
        // 3. Every instance cost-efficient (RP(T) ≥ C with unit tput).
        for inst in &config.instances {
            prop_assert!(inst.tnrp_dollars + 1e-6 >= inst.cost_dollars);
        }
        // 4. Never worse than no-packing.
        let no_packing: f64 = tasks.iter().map(|t| prices.rp_dollars(t.id)).sum();
        prop_assert!(config.total_cost_dollars() <= no_packing + 1e-6);
    }

    #[test]
    fn solver_solutions_are_valid_and_ordered(tasks in arb_tasks(10)) {
        let catalog = Catalog::aws_eval_2025();
        let items: Vec<Item> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| Item { id: i, demand: t.demand.clone() })
            .collect();
        let problem = PackingProblem::new(items, catalog);
        let ffd = first_fit_decreasing(&problem);
        prop_assert!(ffd.validate(&problem).is_ok(), "{:?}", ffd.validate(&problem));
        let bnb = branch_and_bound(
            &problem,
            BnbConfig { time_limit: std::time::Duration::from_millis(500), ..Default::default() },
        );
        prop_assert!(bnb.validate(&problem).is_ok(), "{:?}", bnb.validate(&problem));
        // The exact solver never loses to the heuristic warm start.
        prop_assert!(bnb.cost_dollars <= ffd.cost_dollars + 1e-9);
        // And never beats the relaxation bound.
        prop_assert!(bnb.cost_dollars + 1e-6 >= problem.lower_bound());
    }

    #[test]
    fn duration_samplers_are_positive_and_finite(seed in 0u64..1000) {
        use eva::workloads::{AlibabaDurations, DurationSampler, GavelDurations};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = AlibabaDurations::default().sample(&mut rng);
        let g = GavelDurations.sample(&mut rng);
        prop_assert!(a.as_hours_f64() > 0.0 && a.as_hours_f64() < 2000.0);
        prop_assert!(g.as_hours_f64() > 0.0 && g.as_hours_f64() < 200.0);
    }

    #[test]
    fn fault_plans_are_pure_functions_of_seed_regime_intensity(
        master_seed in 0u64..500,
        regime in prop_oneof![
            Just("preempt-storm"), Just("capacity-shock"), Just("price-step"),
            Just("ckpt-drop"), Just("straggler"), Just("worker-crash"),
        ],
        intensity in 0.25f64..4.0,
        horizon_hours in 1.0f64..200.0,
    ) {
        let spec = FaultSpec::parse(&format!("{regime}:{intensity}")).unwrap();
        let horizon = SimDuration::from_hours_f64(horizon_hours);
        let a = FaultPlan::compile(spec, master_seed, horizon);
        let b = FaultPlan::compile(spec, master_seed, horizon);
        prop_assert_eq!(&a.events, &b.events, "same inputs, same schedule");
        prop_assert!(!a.is_empty(), "a non-none regime always strikes");
        // Timestamped before the run, strictly inside the horizon.
        for w in a.events.windows(2) {
            prop_assert!(w[0].at < w[1].at, "event times must be strictly monotone");
        }
    }

    #[test]
    fn trace_modifiers_preserve_job_count_and_feasibility(
        seed in 0u64..50,
        gpu_prop in 0.0f64..1.0,
        task_prop in 0.0f64..1.0,
    ) {
        use eva::workloads::{MultiGpuMix, MultiTaskMix};
        let mut cfg = AlibabaTraceConfig::small(DurationModelChoice::Alibaba);
        cfg.num_jobs = 50;
        let base = cfg.generate(seed);
        let catalog = Catalog::aws_eval_2025();
        let modified = MultiTaskMix::new(task_prop)
            .apply(&MultiGpuMix::new(gpu_prop).apply(&base, seed), seed);
        prop_assert_eq!(modified.len(), base.len());
        for job in modified.jobs() {
            for task in &job.tasks {
                prop_assert!(catalog.cheapest_fit(&task.demand).is_some());
            }
        }
    }
}

proptest! {
    // Full faulted simulations across the whole paper set are costly; a
    // handful of cases still covers every regime over many seeds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn faulted_simulation_reports_are_byte_identical(
        seed in 0u64..100,
        regime in prop_oneof![
            Just("preempt-storm"), Just("capacity-shock"), Just("price-step"),
            Just("ckpt-drop"), Just("straggler"), Just("worker-crash"),
        ],
        intensity in 0.5f64..3.0,
    ) {
        // The fault axis must not cost the simulator its determinism:
        // the same (seed, regime, intensity) yields byte-identical
        // reports for every scheduler in the paper set.
        let trace = AlibabaTraceConfig {
            num_jobs: 8,
            arrival_rate_per_hour: 6.0,
            durations: DurationModelChoice::Alibaba,
        }
        .generate(seed);
        let spec = FaultSpec::parse(&format!("{regime}:{intensity}")).unwrap();
        for kind in SchedulerKind::paper_set() {
            let label = kind.label();
            let mut cfg = SimConfig::new(trace.clone(), kind);
            cfg.seed = seed;
            cfg.faults = spec;
            let a = serde_json::to_string(&run_simulation(&cfg)).unwrap();
            let b = serde_json::to_string(&run_simulation(&cfg)).unwrap();
            prop_assert_eq!(a, b, "{} diverged under {}", label, spec.label());
        }
    }
}
