//! Sim-vs-live backend parity: the live backend must execute exactly the
//! work the world model scheduled, and do so reproducibly.
//!
//! (a) Running one config through both backends yields matching job
//!     completion sets and makespans within tolerance.
//! (b) The live backend is deterministic: repeated runs with the same
//!     seed produce identical reports (and identical JSON), because every
//!     checkpoint lands on a planned iteration boundary rather than an
//!     arbitrary real-time instant.
//! (c) A backend-axis sweep carries both variants in one grid, with the
//!     sim cells unchanged by the live cells' presence.
//! (d) Under injected fault regimes the delta report keeps its shape —
//!     deltas are internally consistent, makespan drift equals the
//!     re-executed work — and the fault-free cells of a faulted grid
//!     stay exactly zero-delta.

use std::collections::BTreeSet;

use eva::prelude::*;
use eva_cloud::FidelityMode;

fn trace(jobs: usize, seed: u64) -> Trace {
    SyntheticTraceConfig {
        num_jobs: jobs,
        mean_interarrival: SimDuration::from_mins(10),
        duration: eva::workloads::UniformHours::new(0.3, 1.0),
        single_task_only: false,
    }
    .generate(seed)
}

fn cfg(scheduler: SchedulerKind) -> SimConfig {
    let mut cfg = SimConfig::new(trace(8, 5), scheduler);
    cfg.fidelity = FidelityMode::Nominal;
    cfg
}

#[test]
fn live_and_sim_agree_on_completions_and_makespan() {
    for scheduler in [
        SchedulerKind::NoPacking,
        SchedulerKind::Eva(EvaConfig::eva()),
    ] {
        let cfg = cfg(scheduler);
        let sim = SimBackend.run(&cfg);
        let outcome = LiveBackend.run_detailed(&cfg).unwrap();
        let label = &sim.scheduler;

        // Completion sets: every job the sim completed was confirmed
        // finished on the real runtime, and nothing extra.
        assert_eq!(
            outcome.completed_jobs, outcome.expected_jobs,
            "{label}: live completions diverge from the schedule"
        );
        let sim_script_jobs: BTreeSet<_> = run_recorded(&cfg).1.completed_jobs().collect();
        assert_eq!(outcome.expected_jobs, sim_script_jobs, "{label}");
        assert_eq!(outcome.report.jobs_completed, sim.jobs_completed, "{label}");

        // Makespan within tolerance (identical here: the live run
        // executes the very schedule the sim produced).
        let delta = (outcome.report.makespan_hours - sim.makespan_hours).abs();
        assert!(
            delta <= 1e-9 + 0.01 * sim.makespan_hours,
            "{label}: makespan drift {delta}h"
        );

        // Execution-level audit: no lost iterations, no corrupted state.
        assert_eq!(outcome.live_iterations, outcome.expected_iterations, "{label}");
        assert_eq!(outcome.digest_mismatches, 0, "{label}");
    }
}

#[test]
fn live_backend_is_deterministic_across_runs() {
    let cfg = cfg(SchedulerKind::Eva(EvaConfig::eva()));
    let a = LiveBackend.run(&cfg);
    let b = LiveBackend.run(&cfg);
    assert_eq!(a, b, "same seed, same live report");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );

    // And the detailed measurements agree too.
    let oa = LiveBackend.run_detailed(&cfg).unwrap();
    let ob = LiveBackend.run_detailed(&cfg).unwrap();
    assert_eq!(oa.live_iterations, ob.live_iterations);
    assert_eq!(oa.live_checkpoints, ob.live_checkpoints);
    assert_eq!(oa.completed_jobs, ob.completed_jobs);
}

#[test]
fn fault_regimes_keep_delta_reports_well_shaped() {
    for regime in ["preempt-storm:2", "ckpt-drop:2", "worker-crash:2"] {
        let mut c = cfg(SchedulerKind::Eva(EvaConfig::eva()));
        c.faults = FaultSpec::parse(regime).unwrap();
        let outcome = LiveBackend.run_detailed(&c).unwrap();

        // Shape: the published deltas are exactly their definitions.
        assert_eq!(
            outcome.delta_migrations(),
            outcome.live_checkpoints as i64 - outcome.expected_checkpoints as i64,
            "{regime}"
        );
        assert_eq!(
            outcome.delta_jobs(),
            outcome.completed_jobs.len() as i64 - outcome.expected_jobs.len() as i64,
            "{regime}"
        );
        // Makespan drift is precisely the re-executed work, charged at
        // the iteration↔hours exchange rate — nothing else moves it.
        let charged = outcome.re_executed() as f64 / eva::sim::LIVE_ITERS_PER_HOUR;
        assert!(
            (outcome.delta_makespan_hours() - charged).abs() < 1e-9,
            "{regime}: drift {} != charged {}",
            outcome.delta_makespan_hours(),
            charged
        );
        // Faults cost work and blobs, never correctness: every
        // scheduled job still converges with intact state.
        assert_eq!(outcome.completed_jobs, outcome.expected_jobs, "{regime}");
        assert_eq!(outcome.digest_mismatches, 0, "{regime}");
    }
}

#[test]
fn faulted_grids_keep_fault_free_cells_zero_delta() {
    // A grid carrying both a fault-free and a faulted axis value: the
    // faulted cells must not perturb the fault-free ones, whose sim and
    // live variants must agree exactly.
    let base = trace(6, 9);
    for regime in ["preempt-storm:2", "straggler:2", "capacity-shock:2"] {
        let grid = SweepGrid::new("parity-faults", base.clone())
            .schedulers_by_name(&["no-packing", "eva"])
            .unwrap()
            .backends(vec![BackendKind::Sim, BackendKind::Live])
            .faults(vec![FaultSpec::none(), FaultSpec::parse(regime).unwrap()]);
        let result = SweepRunner::new(2).run(&grid);
        assert_eq!(result.cells.len(), 8, "{regime}");

        let mut by_key = std::collections::BTreeMap::new();
        for cell in &result.cells {
            by_key.insert(
                (
                    cell.key.scheduler.clone(),
                    cell.key.faults.clone(),
                    cell.key.backend.clone(),
                ),
                &cell.report,
            );
        }
        for sched in ["no-packing", "eva"] {
            for faults in ["none", regime] {
                let sim = by_key[&(sched.into(), faults.into(), "sim".into())];
                let live = by_key[&(sched.into(), faults.into(), "live".into())];
                assert_eq!(
                    sim.jobs_completed, live.jobs_completed,
                    "{sched}/{faults}: live lost jobs"
                );
                if faults == "none" {
                    assert_eq!(
                        sim.makespan_hours, live.makespan_hours,
                        "{sched}: fault-free delta must be exactly zero"
                    );
                } else {
                    assert!(
                        live.makespan_hours >= sim.makespan_hours,
                        "{sched}/{faults}: re-execution can only lengthen the live run"
                    );
                }
            }
        }
    }
}

#[test]
fn backend_axis_sweeps_both_variants_in_one_grid() {
    let base = SweepGrid::new("parity", trace(6, 9))
        .schedulers_by_name(&["no-packing", "eva"])
        .unwrap();
    let sim_only = SweepRunner::new(2).run(&base.clone());
    let both = SweepRunner::new(2).run(
        &base.backends(vec![BackendKind::Sim, BackendKind::Live]),
    );
    assert_eq!(both.cells.len(), 4);

    // The sim cells are untouched by the live axis.
    for (a, b) in sim_only.cells.iter().zip(&both.cells[..2]) {
        assert_eq!(a.report, b.report);
        assert_eq!(b.key.backend, "sim");
    }
    // Live cells execute the same schedules: schedule-level metrics match
    // their sim counterparts, and every scheduled job really completed.
    for (s, l) in both.cells[..2].iter().zip(&both.cells[2..]) {
        assert_eq!(l.key.backend, "live");
        assert_eq!(s.key.scheduler, l.key.scheduler);
        assert_eq!(s.report.jobs_completed, l.report.jobs_completed);
        assert_eq!(s.report.total_cost_dollars, l.report.total_cost_dollars);
        assert_eq!(s.report.makespan_hours, l.report.makespan_hours);
    }
}
