//! Multi-process federated sweeps, driven through the real `eva` binary:
//! coordinators spawn genuine worker processes that claim cells from a
//! shared cache dir, so these tests cover the cross-process claim
//! protocol the in-crate unit tests cannot (they must never spawn, or
//! they would re-execute the test harness).

use std::path::{Path, PathBuf};
use std::process::Command;

fn eva() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eva"))
}

fn temp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eva-fedtest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The small grid every test here sweeps: 2 schedulers × 2 seeds.
fn sweep_args(procs: &str, cache_dir: &Path, json: &Path) -> Vec<String> {
    [
        "sweep",
        "--jobs",
        "10",
        "--seeds",
        "1,2",
        "--schedulers",
        "eva,stratus",
        "--threads",
        "2",
        "--procs",
        procs,
        "--cache-dir",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([
        cache_dir.display().to_string(),
        "--json".to_string(),
        json.display().to_string(),
    ])
    .collect()
}

fn claim_files(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "claim"))
        .collect()
}

fn assert_verify_clean(dir: &Path) {
    let out = eva()
        .args(["cache", "verify", "--cache-dir"])
        .arg(dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "cache verify not clean:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn two_process_sweep_is_byte_identical_to_single_process() {
    let root = temp("bytes");
    let (dir1, dir2) = (root.join("cache1"), root.join("cache2"));
    let (json1, json2) = (root.join("one.json"), root.join("two.json"));

    let out = eva().args(sweep_args("1", &dir1, &json1)).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = eva().args(sweep_args("2", &dir2, &json2)).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let single = std::fs::read(&json1).unwrap();
    let federated = std::fs::read(&json2).unwrap();
    assert!(!single.is_empty());
    assert_eq!(
        single, federated,
        "federated artifact diverged from single-process bytes"
    );

    assert_eq!(claim_files(&dir2), Vec::<PathBuf>::new());
    assert_verify_clean(&dir2);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn racing_coordinators_share_one_cache_dir() {
    let root = temp("race");
    let shared = root.join("cache");
    let (json_a, json_b) = (root.join("a.json"), root.join("b.json"));

    // Two federated coordinators launched together: four processes
    // total publishing into one dir, every cell claimed exactly once.
    let mut a = eva().args(sweep_args("2", &shared, &json_a)).spawn().unwrap();
    let mut b = eva().args(sweep_args("2", &shared, &json_b)).spawn().unwrap();
    assert!(a.wait().unwrap().success());
    assert!(b.wait().unwrap().success());

    let bytes_a = std::fs::read(&json_a).unwrap();
    let bytes_b = std::fs::read(&json_b).unwrap();
    assert_eq!(bytes_a, bytes_b, "racing coordinators disagreed");

    assert_eq!(claim_files(&shared), Vec::<PathBuf>::new());
    assert_verify_clean(&shared);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dead_workers_claim_is_stolen_and_rerun_is_clean() {
    let root = temp("steal");
    let dir = root.join("cache");
    let (json1, json2) = (root.join("ref.json"), root.join("rerun.json"));

    // Warm run to learn real entry names.
    let out = eva().args(sweep_args("1", &dir, &json1)).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("warm run populated the cache");

    // Simulate a worker killed mid-cell: its result is gone, its claim
    // file is left behind. Pid 4294967295 exceeds any real pid_max and
    // ts_ms=1 is ancient, so the claim is stealable on both axes.
    std::fs::remove_file(&entry).unwrap();
    let claim = entry.with_extension("claim");
    std::fs::write(
        &claim,
        r#"{"pid":4294967295,"host":"elsewhere","ts_ms":1,"key":"?"}"#,
    )
    .unwrap();

    let out = eva().args(sweep_args("2", &dir, &json2)).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&json1).unwrap(),
        std::fs::read(&json2).unwrap(),
        "rerun after a killed worker diverged"
    );
    assert!(!claim.exists(), "stale claim survived the rerun");
    assert_verify_clean(&dir);
    let _ = std::fs::remove_dir_all(&root);
}

/// Claim-prefix striding: rank 1 of 2 starts its phase-1 sweep halfway
/// through the longest-first order, so it does not contest the prefix a
/// peer already holds. Replayed in-process (single pool thread, claims
/// pre-held by the test) so the contested counts are exact rather than
/// a probabilistic race.
#[test]
fn claim_stride_avoids_contesting_a_peers_prefix() {
    use eva::sim::{CellPool, ClaimAttempt, ClaimStride, ClaimTiming, ReportCache};
    use std::sync::Mutex;
    use std::time::Duration;

    let timing = ClaimTiming {
        stale: Duration::from_secs(600),
        poll: Duration::from_millis(5),
    };
    let fingerprint = |i: usize| format!("cell-{i}");
    // Costs descend with index, so the claim order is [0, 1, 2, 3].
    let cost = |i: usize| 10u64.saturating_sub(i as u64);

    let contested_at = |rank: usize, tag: &str| {
        let dir = temp(tag);
        let cache = ReportCache::new(&dir);
        // "The peer": holds claims on the head cells 0 and 1, and
        // publishes both as soon as this process computes anything.
        let mut held = Vec::new();
        for key in ["cell-0", "cell-1"] {
            match cache.try_claim(key, timing.stale) {
                ClaimAttempt::Acquired(guard) => held.push(guard),
                ClaimAttempt::Held(_) => panic!("fresh claim already held"),
            }
        }
        let held = Mutex::new(held);
        let publisher = cache.clone();
        let run = move |i: usize| {
            let mut held = held.lock().unwrap();
            if !held.is_empty() {
                publisher.store("cell-0", &0u64);
                publisher.store("cell-1", &7u64);
                for guard in held.drain(..) {
                    guard.release();
                }
            }
            (i as u64) * 7
        };
        let (results, _, stats) = CellPool::new(1).run_federated(
            4,
            &fingerprint,
            &cost,
            &cache,
            timing,
            ClaimStride { rank, procs: 2 },
            &run,
        );
        assert_eq!(results, vec![0, 7, 14, 21]);
        assert_eq!(stats.executed, 2, "peer-published prefix was recomputed");
        let _ = std::fs::remove_dir_all(&dir);
        stats.contested
    };

    // Rank 0 sweeps from the head straight into the held prefix.
    let head_on = contested_at(0, "stride-rank0");
    // Rank 1 starts halfway; by the time its sweep wraps around to the
    // prefix, the peer has published, so nothing is contested.
    let strided = contested_at(1, "stride-rank1");
    assert_eq!(head_on, 2);
    assert_eq!(strided, 0);
    assert!(strided < head_on, "striding did not reduce claim contention");
}
