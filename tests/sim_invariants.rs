//! Simulation-level invariants that must hold for any scheduler and trace:
//! accounting conservation, causality, and metric sanity.

use proptest::prelude::*;

use eva::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    (2usize..20, 1u64..500, 0u8..2).prop_map(|(jobs, seed, durations)| {
        let durations = if durations == 0 {
            DurationModelChoice::Alibaba
        } else {
            DurationModelChoice::Gavel
        };
        AlibabaTraceConfig {
            num_jobs: jobs,
            arrival_rate_per_hour: 6.0,
            durations,
        }
        .generate(seed)
    })
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::NoPacking),
        Just(SchedulerKind::Stratus),
        Just(SchedulerKind::Synergy),
        Just(SchedulerKind::Owl),
        Just(SchedulerKind::Eva(EvaConfig::eva())),
        Just(SchedulerKind::Eva(EvaConfig::without_partial())),
        Just(SchedulerKind::Eva(EvaConfig::without_full())),
    ]
}

proptest! {
    // Full simulations are not cheap; a modest case count still explores
    // hundreds of scheduling rounds across schedulers and duration models.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_invariants((trace, kind) in (arb_trace(), arb_scheduler())) {
        let label = kind.label();
        let report = run_simulation(&SimConfig::new(trace.clone(), kind));

        // Everything completes — the simulator never strands a feasible job.
        prop_assert_eq!(report.jobs_completed, trace.len());

        // JCT can never undercut the trace's ideal duration.
        let mean_duration: f64 = trace
            .jobs()
            .iter()
            .map(|j| j.duration_at_full_tput.as_hours_f64())
            .sum::<f64>()
            / trace.len() as f64;
        prop_assert!(
            report.avg_jct_hours + 1e-6 >= mean_duration,
            "{label}: avg JCT {} < ideal mean duration {}",
            report.avg_jct_hours,
            mean_duration
        );

        // Cost is positive and at least the work actually executed on the
        // cheapest conceivable instance.
        prop_assert!(report.total_cost_dollars > 0.0, "{label}");

        // Allocation ratios and throughput are proper fractions.
        for (name, v) in [
            ("gpu", report.gpu_alloc),
            ("cpu", report.cpu_alloc),
            ("ram", report.ram_alloc),
            ("tput", report.avg_norm_tput),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{label}: {name} = {v}");
        }

        // The uptime CDF is monotone and normalized.
        for w in report.uptime_cdf.windows(2) {
            prop_assert!(w[1].value + 1e-12 >= w[0].value, "{label}");
            prop_assert!(w[1].density >= w[0].density, "{label}");
        }
        if let Some(last) = report.uptime_cdf.last() {
            prop_assert!((last.density - 1.0).abs() < 1e-9, "{label}");
        }

        // No-migration schedulers must report (almost) none.
        if label == "No-Packing" {
            prop_assert_eq!(report.migrations_per_task, 0.0);
        }
    }
}

fn faulted_cfg(regime: &str, seed: u64) -> SimConfig {
    let trace = SyntheticTraceConfig {
        num_jobs: 12,
        mean_interarrival: SimDuration::from_mins(8),
        duration: eva::workloads::UniformHours::new(0.4, 1.2),
        single_task_only: false,
    }
    .generate(seed);
    let mut cfg = SimConfig::new(trace, SchedulerKind::Eva(EvaConfig::eva()));
    cfg.faults = FaultSpec::parse(regime).unwrap();
    cfg
}

#[test]
fn preempted_instances_do_no_work_after_their_preemption() {
    // Step the world model event by event under a storm: once an
    // instance is preempted it must hold zero tasks for the rest of the
    // run, and the provider must record its termination at exactly the
    // preemption timestamp — any later work would be phantom throughput
    // a real spot reclaim could never deliver.
    let mut sim = ClusterSim::new(&faulted_cfg("preempt-storm:3", 11));
    loop {
        for &(at, inst) in sim.preemption_log() {
            assert_eq!(
                sim.tasks_on(inst),
                0,
                "preempted {inst} still carries tasks at {:?}",
                sim.now()
            );
            let rec = sim
                .provider()
                .instance(inst)
                .expect("preempted instance must exist");
            assert_eq!(
                rec.terminated_at,
                Some(at),
                "{inst} outlived its preemption"
            );
        }
        if !sim.step() {
            break;
        }
    }
    assert!(
        !sim.preemption_log().is_empty(),
        "an intensity-3 storm must preempt at least one instance"
    );
}

#[test]
fn capacity_shocks_never_drive_free_capacity_negative() {
    // Under shocks the pool limit drops below the live count; free
    // capacity must saturate at zero (never wrap or go negative), and
    // clear back to unlimited when the shock window expires.
    let mut sim = ClusterSim::new(&faulted_cfg("capacity-shock:2", 13));
    let mut saw_limit = false;
    let mut saw_unlimited = false;
    loop {
        let now = sim.now();
        match sim.provider().pool_limit() {
            Some(limit) => {
                saw_limit = true;
                let free = sim.provider().free_capacity(now).unwrap();
                let live = sim.provider().live_count(now);
                assert_eq!(
                    free,
                    limit.saturating_sub(live),
                    "free capacity must saturate against the shock limit"
                );
            }
            None => {
                saw_unlimited = true;
                assert_eq!(sim.provider().free_capacity(now), None);
            }
        }
        if !sim.step() {
            break;
        }
    }
    assert!(saw_limit, "shocks must clamp the pool at least once");
    assert!(saw_unlimited, "shock windows must also expire");
}
