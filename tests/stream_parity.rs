//! Safety rail for streaming ingestion: a batch trace replayed through
//! the pull-based [`JobSource`] path (`ClusterSim::from_source` +
//! `Event::Ingest`) must produce a report byte-identical to the
//! construction-time interning path (`ClusterSim::new` + `Event::
//! Arrival`) — with retirement off *and* on. Serialized-JSON equality
//! makes every float bit observable.

use eva::prelude::*;

fn batch_cfg(trace: Trace, scheduler: SchedulerKind) -> SimConfig {
    let mut cfg = SimConfig::new(trace, SchedulerKind::Stratus);
    cfg.scheduler = scheduler;
    cfg.seed = 7;
    cfg
}

fn report_json(report: &SimReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

fn assert_stream_matches_batch(trace: Trace, scheduler: SchedulerKind) {
    let cfg = batch_cfg(trace, scheduler);
    let batch = report_json(&ClusterSim::new(&cfg).run());

    let source = Box::new(TraceSource::new(cfg.trace.clone()));
    let streamed = report_json(&ClusterSim::from_source(&cfg, source).run());
    assert_eq!(batch, streamed, "streamed trace diverged from batch");

    let mut retire = cfg.clone();
    retire.retire_completed = true;
    let source = Box::new(TraceSource::new(retire.trace.clone()));
    let streamed_retired = report_json(&ClusterSim::from_source(&retire, source).run());
    assert_eq!(
        batch, streamed_retired,
        "streamed trace with retirement diverged from batch"
    );
}

#[test]
fn streamed_synthetic_trace_matches_batch_bytes() {
    let trace = SyntheticTraceConfig::small_scale().generate(42);
    assert_stream_matches_batch(trace, SchedulerKind::Stratus);
}

#[test]
fn streamed_alibaba_trace_matches_batch_bytes() {
    let trace = AlibabaTraceConfig {
        num_jobs: 24,
        arrival_rate_per_hour: 6.0,
        durations: DurationModelChoice::Alibaba,
    }
    .generate(3);
    assert_stream_matches_batch(trace, SchedulerKind::NoPacking);
}

#[test]
fn synthetic_source_stream_matches_pregenerated_trace_run() {
    // The open-loop generator replays `generate(seed)` job for job, so
    // streaming straight from the generator must equal simulating the
    // materialized trace.
    let cfg_src = SyntheticTraceConfig::small_scale();
    let trace = cfg_src.generate(9);
    let cfg = batch_cfg(trace, SchedulerKind::Stratus);
    let batch = report_json(&ClusterSim::new(&cfg).run());
    let source = Box::new(SyntheticSource::new(&cfg_src, 9));
    let streamed = report_json(&ClusterSim::from_source(&cfg, source).run());
    assert_eq!(batch, streamed);
}

#[test]
fn streaming_world_audits_clean_while_recycling() {
    let mut cfg = batch_cfg(SyntheticTraceConfig::small_scale().generate(5), SchedulerKind::Stratus);
    cfg.retire_completed = true;
    let source = Box::new(SyntheticSource::open_loop(6.0, 60, 13));
    let mut sim = ClusterSim::from_source(&cfg, source);
    let mut steps = 0u64;
    while sim.step() {
        steps += 1;
        if steps.is_multiple_of(64) {
            sim.audit_slots().expect("streaming audit");
        }
    }
    sim.audit_slots().expect("final streaming audit");
    assert_eq!(sim.jobs_ingested(), 60);
    assert!(
        sim.live_job_slots() == 0,
        "all retired at drain: {} live rows",
        sim.live_job_slots()
    );
    assert!(
        sim.job_arena_rows() < 60,
        "slot recycling kept rows below jobs ingested ({} rows)",
        sim.job_arena_rows()
    );
}
